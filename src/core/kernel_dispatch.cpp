#include "core/kernel_dispatch.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

#include "arch/pe.hpp"
#include "util/check.hpp"

namespace edea::core {

// ---------------------------------------------------------------------------
// Generic reference implementations.
// ---------------------------------------------------------------------------

void generic_dwc_kernel(const DwcKernelArgs& a) {
  const int k = a.kernel;
  const arch::MacLane lane;
  arch::AdderTree tree(k * k);
  // Caller-local scratch: the old engine kept this in a member
  // (`products_`), which silently made steps non-reentrant.
  std::vector<std::int32_t> products(static_cast<std::size_t>(k * k));

  for (int ch = 0; ch < a.channels; ++ch) {
    for (int ty = 0; ty < a.tn; ++ty) {
      for (int tx = 0; tx < a.tm; ++tx) {
        // One 9-input adder tree instance: 3x3 products for this output.
        for (int i = 0; i < k; ++i) {
          for (int j = 0; j < k; ++j) {
            const int r = ty * a.stride + i * a.dilation;
            const int c = tx * a.stride + j * a.dilation;
            const std::int8_t act =
                a.window[static_cast<std::size_t>((r * a.extent + c) *
                                                      a.channels +
                                                  ch)];
            const std::int8_t w = a.weights[static_cast<std::size_t>(
                (i * k + j) * a.channels + ch)];
            products[static_cast<std::size_t>(i * k + j)] =
                lane.multiply(act, w, *a.activity);
          }
        }
        a.acc[static_cast<std::size_t>((ty * a.tm + tx) * a.channels + ch)] =
            tree.sum(products);
      }
    }
  }
}

void generic_pwc_kernel(const PwcKernelArgs& a) {
  const arch::MacLane lane;
  arch::AdderTree tree(a.td);
  std::vector<std::int32_t> products(static_cast<std::size_t>(a.td));

  for (int r = 0; r < a.rows; ++r) {
    for (int c = 0; c < a.cols; ++c) {
      for (int kk = 0; kk < a.kernels; ++kk) {
        // One Td-input adder tree fed by the channel lanes.
        for (int ch = 0; ch < a.td; ++ch) {
          if (ch < a.channels) {
            const std::int8_t act = a.activations[static_cast<std::size_t>(
                (r * a.cols + c) * a.channels + ch)];
            const std::int8_t w = a.weights[static_cast<std::size_t>(
                kk * a.channels + ch)];
            products[static_cast<std::size_t>(ch)] =
                lane.multiply(act, w, *a.activity);
          } else {
            // Channel lanes beyond the slice width idle (zero product).
            lane.idle(*a.activity);
            products[static_cast<std::size_t>(ch)] = 0;
          }
        }
        a.psum[static_cast<std::size_t>((r * a.cols + c) * a.kernels + kk)] =
            tree.sum(products);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Specialized fast paths.
//
// All of them compute the same int32 accumulators as the generic path
// (integer addition is exact and order-free in these ranges: at most
// max(k*k, Td) terms of magnitude <= 2^14) and tally MacActivity in bulk:
//   lane_cycles / useful_macs: one per modeled multiply,
//   zero_operand_macs: one per multiply whose activation is zero.
// ---------------------------------------------------------------------------

namespace {

/// 3x3 DWC at dilation 1, stride a compile-time constant. The inner loop
/// walks the channel axis - the innermost dimension of both the window
/// and the weight slice - so each of the nine unrolled taps is a
/// contiguous int8 stream the compiler can vectorize. sum0/sum1/sum2 are
/// the per-kernel-row accumulators of the hand-tuned fixed-shape kernels
/// this transformation is borrowed from.
template <int Stride>
void dwc3x3_kernel(const DwcKernelArgs& a) {
  const int C = a.channels;
  const int row_pitch = a.extent * C;
  const std::int8_t* const w = a.weights;  // [3][3][C], tap (i,j) at (i*3+j)*C

  std::int64_t zeros = 0;
  for (int ty = 0; ty < a.tn; ++ty) {
    for (int tx = 0; tx < a.tm; ++tx) {
      const std::int8_t* const r0 =
          a.window + (ty * Stride * a.extent + tx * Stride) * C;
      const std::int8_t* const r1 = r0 + row_pitch;
      const std::int8_t* const r2 = r0 + 2 * row_pitch;
      std::int32_t* const out = a.acc + (ty * a.tm + tx) * C;
      for (int ch = 0; ch < C; ++ch) {
        const std::int32_t a00 = r0[ch];
        const std::int32_t a01 = r0[C + ch];
        const std::int32_t a02 = r0[2 * C + ch];
        const std::int32_t a10 = r1[ch];
        const std::int32_t a11 = r1[C + ch];
        const std::int32_t a12 = r1[2 * C + ch];
        const std::int32_t a20 = r2[ch];
        const std::int32_t a21 = r2[C + ch];
        const std::int32_t a22 = r2[2 * C + ch];
        const std::int32_t sum0 = a00 * w[ch] + a01 * w[C + ch] +
                                  a02 * w[2 * C + ch];
        const std::int32_t sum1 = a10 * w[3 * C + ch] + a11 * w[4 * C + ch] +
                                  a12 * w[5 * C + ch];
        const std::int32_t sum2 = a20 * w[6 * C + ch] + a21 * w[7 * C + ch] +
                                  a22 * w[8 * C + ch];
        out[ch] = sum0 + sum1 + sum2;
        zeros += (a00 == 0) + (a01 == 0) + (a02 == 0) + (a10 == 0) +
                 (a11 == 0) + (a12 == 0) + (a20 == 0) + (a21 == 0) +
                 (a22 == 0);
      }
    }
  }
  const std::int64_t macs = std::int64_t{9} * a.tn * a.tm * C;
  a.activity->lane_cycles += macs;
  a.activity->useful_macs += macs;
  a.activity->zero_operand_macs += zeros;
}

/// 1x1 PWC: each output is a dot product across the slice channels. The
/// channel loop is contiguous for both operands; zero-activation lanes
/// are counted once per position and scaled by the kernel-group width
/// (the generic path re-reads each activation for every kernel).
void pwc1x1_kernel(const PwcKernelArgs& a) {
  const int C = a.channels;
  const int positions = a.rows * a.cols;

  std::int64_t zero_acts = 0;
  for (int p = 0; p < positions; ++p) {
    const std::int8_t* const act = a.activations + p * C;
    std::int32_t* const out = a.psum + p * a.kernels;
    for (int kk = 0; kk < a.kernels; ++kk) {
      const std::int8_t* const w = a.weights + kk * C;
      std::int32_t sum = 0;
      for (int ch = 0; ch < C; ++ch) {
        sum += static_cast<std::int32_t>(act[ch]) *
               static_cast<std::int32_t>(w[ch]);
      }
      out[kk] = sum;
    }
    for (int ch = 0; ch < C; ++ch) zero_acts += act[ch] == 0;
  }

  const std::int64_t dots = std::int64_t{1} * positions * a.kernels;
  a.activity->useful_macs += dots * C;
  // Every dot product clocks all Td lanes; lanes in [channels, Td) idle.
  a.activity->lane_cycles += dots * a.td;
  a.activity->zero_operand_macs += zero_acts * a.kernels;
}

void validate_key(const KernelShapeKey& key) {
  EDEA_REQUIRE(key.kernel > 0 && key.kernel % 2 == 1,
               "kernel extent must be positive and odd");
  EDEA_REQUIRE(key.family != OpFamily::kPwc || key.kernel == 1,
               "PWC kernels are 1x1 by definition");
  EDEA_REQUIRE(key.stride == 1 || key.stride == 2, "stride must be 1 or 2");
  EDEA_REQUIRE(key.dilation >= 1, "dilation must be >= 1");
  EDEA_REQUIRE(key.depth_multiplier >= 0,
               "depth_multiplier must be >= 1, or 0 for the wildcard");
}

}  // namespace

std::string KernelShapeKey::to_string() const {
  return std::string(family == OpFamily::kDwc ? "dwc" : "pwc") +
         " k=" + std::to_string(kernel) + " s=" + std::to_string(stride) +
         " d=" + std::to_string(dilation) + " m=" +
         (depth_multiplier == 0 ? std::string("any")
                                : std::to_string(depth_multiplier));
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

struct KernelDispatch::Impl {
  mutable std::mutex mutex;
  std::map<KernelShapeKey, std::pair<DwcKernelFn, std::string>> dwc;
  std::map<KernelShapeKey, std::pair<PwcKernelFn, std::string>> pwc;
};

KernelDispatch::KernelDispatch() : impl_(new Impl) {
  // Built-ins registered in-registry (not from a static elsewhere) so
  // static-library link order can never drop a fast path. All wildcard
  // the depth multiplier: the engine-level math is multiplier-invariant.
  KernelShapeKey key;
  key.family = OpFamily::kDwc;
  key.kernel = 3;
  key.dilation = 1;
  key.depth_multiplier = 0;
  key.stride = 1;
  register_dwc(key, &dwc3x3_kernel<1>, "dwc3x3_s1_rowsum");
  key.stride = 2;
  register_dwc(key, &dwc3x3_kernel<2>, "dwc3x3_s2_rowsum");
  key.family = OpFamily::kPwc;
  key.kernel = 1;
  key.stride = 1;
  register_pwc(key, &pwc1x1_kernel, "pwc1x1_dot");
}

KernelDispatch& KernelDispatch::instance() {
  static KernelDispatch dispatch;
  return dispatch;
}

void KernelDispatch::register_dwc(const KernelShapeKey& key, DwcKernelFn fn,
                                  std::string label) {
  EDEA_REQUIRE(key.family == OpFamily::kDwc,
               "register_dwc key must have family kDwc");
  EDEA_REQUIRE(fn != nullptr, "kernel function must be non-null");
  validate_key(key);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->dwc[key] = {fn, std::move(label)};
}

void KernelDispatch::register_pwc(const KernelShapeKey& key, PwcKernelFn fn,
                                  std::string label) {
  EDEA_REQUIRE(key.family == OpFamily::kPwc,
               "register_pwc key must have family kPwc");
  EDEA_REQUIRE(fn != nullptr, "kernel function must be non-null");
  validate_key(key);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->pwc[key] = {fn, std::move(label)};
}

DwcKernelFn KernelDispatch::find_dwc(const KernelShapeKey& key) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->dwc.find(key);
  if (it == impl_->dwc.end() && key.depth_multiplier != 0) {
    KernelShapeKey wildcard = key;
    wildcard.depth_multiplier = 0;
    it = impl_->dwc.find(wildcard);
  }
  return it == impl_->dwc.end() ? &generic_dwc_kernel : it->second.first;
}

PwcKernelFn KernelDispatch::find_pwc(const KernelShapeKey& key) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->pwc.find(key);
  if (it == impl_->pwc.end() && key.depth_multiplier != 0) {
    KernelShapeKey wildcard = key;
    wildcard.depth_multiplier = 0;
    it = impl_->pwc.find(wildcard);
  }
  return it == impl_->pwc.end() ? &generic_pwc_kernel : it->second.first;
}

bool KernelDispatch::has_specialization(const KernelShapeKey& key) const {
  return key.family == OpFamily::kDwc ? find_dwc(key) != &generic_dwc_kernel
                                      : find_pwc(key) != &generic_pwc_kernel;
}

std::vector<std::string> KernelDispatch::registered_shapes() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> shapes;
  shapes.reserve(impl_->dwc.size() + impl_->pwc.size());
  for (const auto& [key, entry] : impl_->dwc) {
    shapes.push_back(key.to_string() + " -> " + entry.second);
  }
  for (const auto& [key, entry] : impl_->pwc) {
    shapes.push_back(key.to_string() + " -> " + entry.second);
  }
  return shapes;
}

KernelPolicy KernelDispatch::default_policy() {
  static const KernelPolicy policy = [] {
    const char* env = std::getenv("EDEA_FORCE_GENERIC_KERNELS");
    const bool forced =
        env != nullptr && *env != '\0' && std::string(env) != "0";
    return forced ? KernelPolicy::kForceGeneric : KernelPolicy::kAuto;
  }();
  return policy;
}

}  // namespace edea::core
