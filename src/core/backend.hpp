// backend.hpp - the pluggable accelerator-backend seam of the simulator.
//
// The paper's central claims are comparative: EDEA's direct DWC->PWC
// transfer and parallel dual engines versus a serialized baseline that
// round-trips intermediates through external memory (Fig. 3, Table III).
// "Which dataflow" is therefore an experimental dimension, not a constant
// - every layer of the stack (SweepRunner, dse, the simulation service,
// benches) selects a backend by string id through the registry below
// instead of hard-instantiating EdeaAccelerator.
//
// Contract every backend must honor (tests/backend_test.cpp):
//   - run_network consumes the same nn::QuantDscNetwork workloads and
//     produces a core::NetworkRunResult,
//   - outputs are BIT-EXACT across backends: the arithmetic (engines,
//     Non-Conv math, quantization) is shared; backends may only differ in
//     *measurements* - cycles, traffic, buffer accesses - which is what
//     makes a cross-backend sweep a controlled experiment,
//   - set_tile_parallelism accepts any width >= 1 and never changes
//     results (a backend without a host-parallel implementation runs
//     serially at every width; one with it must be bit-identical).
//
// Two backends ship in-tree, registered eagerly by the registry itself so
// static-library link order can never drop them:
//   "edea"        the dual-engine accelerator with direct data transfer
//                 (core::EdeaAccelerator - the paper's architecture),
//   "serialized"  the comparison architecture: serial DWC-then-PWC phases
//                 with the intermediate map round-tripping through
//                 external memory (baseline::SerializedDscAccelerator).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/kernel_dispatch.hpp"
#include "core/run_result.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace edea::core {

/// The backend id every consumer defaults to when none is requested.
inline constexpr std::string_view kDefaultBackendId = "edea";

/// A full-network accelerator model selectable by id. See the file comment
/// for the cross-backend contract.
class AcceleratorBackend {
 public:
  virtual ~AcceleratorBackend() = default;

  /// Runs a stack of DSC layers back to back, layer i+1 consuming layer
  /// i's output. The input is the int8 ifmap [R][C][D] of the first layer.
  [[nodiscard]] virtual NetworkRunResult run_network(
      const std::vector<nn::QuantDscLayer>& layers,
      const nn::Int8Tensor& input) = 0;

  /// Runs the same input through the network `batch` times (batch >= 1,
  /// else PreconditionError) and returns one result per image. Contract:
  /// every per-image result is bit-identical to a standalone run_network
  /// call - batching may only amortize host-side setup (memory planning,
  /// worker creation), never change arithmetic or measurements. The base
  /// implementation is the literal reference: `batch` sequential
  /// run_network calls. Backends with a planned-memory runtime override it
  /// to run all images through one arena plan (and then report the batched
  /// plan's peak via NetworkRunResult::peak_arena_bytes).
  [[nodiscard]] virtual std::vector<NetworkRunResult> run_network_batch(
      const std::vector<nn::QuantDscLayer>& layers,
      const nn::Int8Tensor& input, int batch);

  /// Host-side tile parallelism inside one layer. Every backend accepts
  /// any width >= 1 (zero/negative is a PreconditionError) and produces
  /// results bit-identical to width 1.
  virtual void set_tile_parallelism(int parallelism) = 0;
  [[nodiscard]] virtual int tile_parallelism() const noexcept = 0;

  /// Engine inner-loop kernel selection (core::KernelDispatch):
  /// kForceGeneric pins the generic reference kernels, kAuto lets hot
  /// shapes run their specialized implementations. Either way results and
  /// every counter are bit-identical - the knob exists for A/B testing,
  /// which is why the base implementation is a no-op (a backend that runs
  /// no dispatchable engine has nothing to pin).
  virtual void set_kernel_policy(KernelPolicy policy) { (void)policy; }

  /// The configuration this backend instance was built from.
  [[nodiscard]] virtual const EdeaConfig& config() const noexcept = 0;

  /// The registry id this backend answers to ("edea", "serialized", ...).
  [[nodiscard]] virtual std::string_view backend_id() const noexcept = 0;
};

/// Builds a fresh backend instance for one simulation job. Instances carry
/// per-run state (SRAM, counters) and must never be shared across threads
/// - exactly the EdeaAccelerator rule, now per backend.
using BackendFactory =
    std::function<std::unique_ptr<AcceleratorBackend>(const EdeaConfig&)>;

/// True iff `id` resolves in the registry. The cheap guard protocol
/// parsers and CLI validators use to reject unknown ids up front.
[[nodiscard]] bool backend_known(const std::string& id);

/// Every registered backend id, sorted - stable across processes, so
/// error messages and --help listings are deterministic.
[[nodiscard]] std::vector<std::string> backend_ids();

/// "edea, serialized, ..." - the sorted id list as one human-readable
/// string, for "unknown backend" diagnostics.
[[nodiscard]] std::string known_backends_string();

/// Instantiates the backend registered under `id` with `config`. Throws
/// PreconditionError for unknown ids (naming the known ones); any
/// configuration problem is the backend constructor's to raise.
[[nodiscard]] std::unique_ptr<AcceleratorBackend> make_backend(
    const std::string& id, const EdeaConfig& config = EdeaConfig::paper());

/// Registers (or replaces) a backend factory under `id`. The two in-tree
/// backends are pre-registered; embedders can add their own dataflows and
/// every sweep/DSE/service path picks them up by id. Empty ids and ids
/// with whitespace are rejected (they could not travel through the
/// key=value line protocol). Returns true when `id` was new.
bool register_backend(const std::string& id, BackendFactory factory);

}  // namespace edea::core
