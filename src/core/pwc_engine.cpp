#include "core/pwc_engine.hpp"

#include "util/check.hpp"

namespace edea::core {

PwcEngine::PwcEngine(const EdeaConfig& config)
    : config_(config), tree_(config.td) {
  config_.validate();
  products_.resize(static_cast<std::size_t>(config_.td));
}

PwcStepOutput PwcEngine::step(const PwcStepInput& input) {
  EDEA_REQUIRE(input.rows == config_.tn && input.cols == config_.tm,
               "PWC step tile must be Tn x Tm");
  EDEA_REQUIRE(input.channels > 0 && input.channels <= config_.td,
               "PWC slice channel count must be in (0, Td]");
  EDEA_REQUIRE(input.kernels > 0 && input.kernels <= config_.tk,
               "PWC kernel-group size must be in (0, Tk]");
  EDEA_REQUIRE(input.activations.size() ==
                   static_cast<std::size_t>(input.rows * input.cols *
                                            input.channels),
               "PWC activation block size mismatch");
  EDEA_REQUIRE(input.weights.size() == static_cast<std::size_t>(
                                           input.kernels * input.channels),
               "PWC weight block size mismatch");

  PwcStepOutput out;
  out.rows = input.rows;
  out.cols = input.cols;
  out.kernels = input.kernels;
  out.psum.resize(
      static_cast<std::size_t>(out.rows * out.cols * out.kernels));

  for (int r = 0; r < input.rows; ++r) {
    for (int c = 0; c < input.cols; ++c) {
      for (int kk = 0; kk < input.kernels; ++kk) {
        // One 8-input adder tree fed by two 4-multiplier PEs.
        for (int ch = 0; ch < config_.td; ++ch) {
          if (ch < input.channels) {
            products_[static_cast<std::size_t>(ch)] =
                lane_.multiply(input.act(r, c, ch), input.wt(kk, ch),
                               activity_);
          } else {
            // Channel lanes beyond the slice width idle (zero product).
            lane_.idle(activity_);
            products_[static_cast<std::size_t>(ch)] = 0;
          }
        }
        out.psum[static_cast<std::size_t>((r * out.cols + c) * out.kernels +
                                          kk)] = tree_.sum(products_);
      }
    }
  }

  // Kernel lanes beyond the group width idle this cycle.
  const int idle_lanes =
      (config_.tk - input.kernels) * config_.tn * config_.tm * config_.td;
  for (int i = 0; i < idle_lanes; ++i) lane_.idle(activity_);

  return out;
}

void PwcEngine::idle_cycle() {
  for (int i = 0; i < mac_count(); ++i) lane_.idle(activity_);
}

}  // namespace edea::core
