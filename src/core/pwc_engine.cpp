#include "core/pwc_engine.hpp"

#include "util/check.hpp"

namespace edea::core {

PwcEngine::PwcEngine(const EdeaConfig& config)
    : config_(config), tree_(config.td) {
  config_.validate();
}

KernelShapeKey PwcEngine::shape_key(int depth_multiplier) const noexcept {
  KernelShapeKey key;
  key.family = OpFamily::kPwc;
  key.kernel = 1;
  key.stride = 1;
  key.dilation = 1;
  key.depth_multiplier = depth_multiplier;
  return key;
}

void PwcEngine::set_kernel_policy(KernelPolicy policy) noexcept {
  policy_ = policy;
  cached_fn_ = nullptr;
}

PwcStepOutput PwcEngine::run_step(const PwcStepInput& input, PwcKernelFn fn,
                                  arch::MacActivity& activity) const {
  EDEA_REQUIRE(input.rows == config_.tn && input.cols == config_.tm,
               "PWC step tile must be Tn x Tm");
  EDEA_REQUIRE(input.channels > 0 && input.channels <= config_.td,
               "PWC slice channel count must be in (0, Td]");
  EDEA_REQUIRE(input.kernels > 0 && input.kernels <= config_.tk,
               "PWC kernel-group size must be in (0, Tk]");
  EDEA_REQUIRE(input.activations.size() ==
                   static_cast<std::size_t>(input.rows * input.cols *
                                            input.channels),
               "PWC activation block size mismatch");
  EDEA_REQUIRE(input.weights.size() == static_cast<std::size_t>(
                                           input.kernels * input.channels),
               "PWC weight block size mismatch");

  PwcStepOutput out;
  out.rows = input.rows;
  out.cols = input.cols;
  out.kernels = input.kernels;
  out.psum.resize(
      static_cast<std::size_t>(out.rows * out.cols * out.kernels));

  PwcKernelArgs args;
  args.activations = input.activations.data();
  args.weights = input.weights.data();
  args.rows = input.rows;
  args.cols = input.cols;
  args.channels = input.channels;
  args.kernels = input.kernels;
  args.td = config_.td;
  args.psum = out.psum.data();
  args.activity = &activity;
  fn(args);

  // Kernel lanes beyond the group width idle this cycle. Idle accounting
  // lives above the kernel boundary so every kernel sees the same contract.
  const int idle_lanes =
      (config_.tk - input.kernels) * config_.tn * config_.tm * config_.td;
  for (int i = 0; i < idle_lanes; ++i) lane_.idle(activity);

  return out;
}

PwcStepOutput PwcEngine::step(const PwcStepInput& input,
                              int depth_multiplier) {
  PwcKernelFn fn = &generic_pwc_kernel;
  if (policy_ != KernelPolicy::kForceGeneric) {
    const KernelShapeKey key = shape_key(depth_multiplier);
    if (cached_fn_ == nullptr || !(cached_key_ == key)) {
      cached_key_ = key;
      cached_fn_ = KernelDispatch::instance().find_pwc(key);
    }
    fn = cached_fn_;
  }
  return run_step(input, fn, activity_);
}

PwcStepOutput PwcEngine::step(const PwcStepInput& input, int depth_multiplier,
                              arch::MacActivity& activity) const {
  const PwcKernelFn fn = policy_ == KernelPolicy::kForceGeneric
                             ? &generic_pwc_kernel
                             : KernelDispatch::instance().find_pwc(
                                   shape_key(depth_multiplier));
  return run_step(input, fn, activity);
}

void PwcEngine::idle_cycle() {
  for (int i = 0; i < mac_count(); ++i) lane_.idle(activity_);
}

}  // namespace edea::core
