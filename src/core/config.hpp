// config.hpp - static configuration of the EDEA accelerator.
//
// The paper's silicon fixes Tn=Tm=2, Td=8, Tk=16 (the Case-6/La winner of
// the design space exploration), 3x3 DWC kernels, a 9-cycle pipeline
// initiation, and a 1 GHz clock. The struct keeps every one of these a
// named, validated parameter so the scaling study (Sec. III-B: "PE arrays
// are friendly to scaling") can vary them.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "util/binary.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace edea::core {

struct EdeaConfig {
  // --- dataflow tile sizes (Table I / Table II nomenclature) ---
  int tn = 2;   ///< output tile rows per engine step
  int tm = 2;   ///< output tile cols per engine step
  int td = 8;   ///< input channels per slice (DWC parallel channels)
  int tk = 16;  ///< PWC kernels per group
  int kernel = 3;  ///< DWC kernel extent (H = W)

  // --- pipeline / buffering ---
  int init_cycles = 9;     ///< Fig. 7 initiation interval
  int max_tile_out = 8;    ///< ifmap buffer sized for an 8x8 output tile
  double clock_ghz = 1.0;  ///< TT corner, 0.8 V

  /// The canonical configuration of the fabricated accelerator.
  [[nodiscard]] static EdeaConfig paper() { return EdeaConfig{}; }

  void validate() const {
    EDEA_REQUIRE(tn > 0 && tm > 0 && td > 0 && tk > 0, "tile sizes positive");
    EDEA_REQUIRE(kernel > 0 && kernel % 2 == 1, "kernel must be odd");
    EDEA_REQUIRE(init_cycles >= 0, "initiation cycles non-negative");
    EDEA_REQUIRE(max_tile_out >= tn && max_tile_out >= tm,
                 "buffer tile must hold at least one engine step");
    EDEA_REQUIRE(max_tile_out % tn == 0 && max_tile_out % tm == 0,
                 "buffer tile must be a whole number of engine steps");
    EDEA_REQUIRE(clock_ghz > 0.0, "clock must be positive");
  }

  // --- derived structural quantities (Fig. 5) ---

  /// DWC engine multiplier count: Td x H x W x Tn x Tm (= 288 in the paper).
  [[nodiscard]] int dwc_mac_count() const noexcept {
    return td * kernel * kernel * tn * tm;
  }

  /// PWC engine multiplier count: Td x Tk x Tn x Tm (= 512 in the paper).
  [[nodiscard]] int pwc_mac_count() const noexcept { return td * tk * tn * tm; }

  /// Total PE (multiplier) count (= 800 in the paper, Table III).
  [[nodiscard]] int total_mac_count() const noexcept {
    return dwc_mac_count() + pwc_mac_count();
  }

  /// Input window extent the DWC engine consumes for one step at `stride`
  /// with kernel taps spaced `dilation` apart:
  /// (Tn-1)*stride + (kernel-1)*dilation + 1. Paper (dilation 1): 4x4 at
  /// stride 1, 5x5 at stride 2.
  [[nodiscard]] int dwc_window_extent(int stride, int dilation = 1) const
      noexcept {
    return (tn - 1) * stride + (kernel - 1) * dilation + 1;
  }

  /// Input region extent backing a full buffer tile at `stride`.
  [[nodiscard]] int ifmap_tile_extent(int stride) const noexcept {
    return (max_tile_out - 1) * stride + kernel;
  }

  /// Largest output-tile extent whose input region still fits the (fixed,
  /// dilation-1-sized) DWC ifmap buffer at this stride/dilation. Dilation
  /// inflates the input halo of a tile, so dilated layers shrink the tile
  /// rather than growing silicon: both the Tiler and the TimingModel step
  /// by this value (they must agree - run_layer asserts cycle-exactness).
  /// Returns 0 when even a 1x1 output tile overflows the buffer (the
  /// dilation is infeasible on this configuration).
  [[nodiscard]] int effective_max_tile_out(int stride, int dilation) const
      noexcept {
    const std::int64_t capacity = dwc_ifmap_buffer_bytes();
    for (int t = max_tile_out; t > 0; --t) {
      const std::int64_t extent =
          (t - 1) * stride + (kernel - 1) * dilation + 1;
      if (extent * extent * td <= capacity) return t;
    }
    return 0;
  }

  // --- buffer capacities in bytes (Fig. 4 instances) ---

  /// DWC ifmap buffer: worst-case input region (stride 2) x Td channels.
  [[nodiscard]] std::int64_t dwc_ifmap_buffer_bytes() const noexcept {
    const int extent = ifmap_tile_extent(/*stride=*/2);
    return std::int64_t{1} * extent * extent * td;
  }

  /// DWC weight buffer: one kernel slice (3x3xTd), double buffered.
  [[nodiscard]] std::int64_t dwc_weight_buffer_bytes() const noexcept {
    return std::int64_t{2} * kernel * kernel * td;
  }

  /// Offline buffer: Non-Conv (k, b) pairs for one slice (Td channels),
  /// 3 bytes each (24-bit), double buffered.
  [[nodiscard]] std::int64_t offline_buffer_bytes() const noexcept {
    return std::int64_t{2} * td * 6;
  }

  /// Intermediate buffer: one Tn x Tm x Td int8 tile, double buffered
  /// (DWC fills one half while PWC drains the other - the direct-transfer
  /// mechanism of the paper's title).
  [[nodiscard]] std::int64_t intermediate_buffer_bytes() const noexcept {
    return std::int64_t{2} * tn * tm * td;
  }

  /// PWC weight buffer: one slice's weights for every kernel (Td x K_max).
  [[nodiscard]] std::int64_t pwc_weight_buffer_bytes(
      int max_out_channels = 1024) const noexcept {
    return std::int64_t{1} * td * max_out_channels;
  }

  /// PWC accumulator: 32-bit partial sums for one buffer tile's ofmap.
  /// Worst case over MobileNetV1: 8x8 spatial x 256 kernels (= layer 3/4).
  [[nodiscard]] std::int64_t accumulator_buffer_bytes(
      int max_psum_entries = 16384) const noexcept {
    return std::int64_t{4} * max_psum_entries;
  }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream clk;
    clk << clock_ghz;  // default precision: "1", "0.8", ...
    return "EdeaConfig{Tn=" + std::to_string(tn) + ",Tm=" + std::to_string(tm) +
           ",Td=" + std::to_string(td) + ",Tk=" + std::to_string(tk) +
           ",k=" + std::to_string(kernel) +
           ",init=" + std::to_string(init_cycles) +
           ",tile=" + std::to_string(max_tile_out) +
           ",clk=" + clk.str() + "GHz}";
  }

  /// Two configurations are equal iff every parameter matches; the
  /// simulation service relies on this as the exact (collision-free) part
  /// of its cache key.
  friend bool operator==(const EdeaConfig&, const EdeaConfig&) = default;

  /// Binary encoding used by the simulation service's persisted result
  /// cache: every parameter, field by field, in declaration order (the
  /// same fields operator== and hash() consume).
  void encode(util::ByteWriter& w) const {
    w.pod(tn);
    w.pod(tm);
    w.pod(td);
    w.pod(tk);
    w.pod(kernel);
    w.pod(init_cycles);
    w.pod(max_tile_out);
    w.pod(clock_ghz);
  }
  [[nodiscard]] static EdeaConfig decode(util::ByteReader& r) {
    EdeaConfig c;
    c.tn = r.pod<int>();
    c.tm = r.pod<int>();
    c.td = r.pod<int>();
    c.tk = r.pod<int>();
    c.kernel = r.pod<int>();
    c.init_cycles = r.pod<int>();
    c.max_tile_out = r.pod<int>();
    c.clock_ghz = r.pod<double>();
    return c;
  }

  /// Deterministic content hash over every parameter, consistent with
  /// operator== (required by hash-map users of the pair). Fields are fed
  /// individually (never the whole struct) so padding bytes between the
  /// int block and `clock_ghz` can't leak into the digest; -0.0
  /// canonicalizes to 0.0 because the two compare equal.
  [[nodiscard]] std::uint64_t hash() const noexcept {
    util::Fnv1a64 h;
    h.pod(tn).pod(tm).pod(td).pod(tk).pod(kernel);
    h.pod(init_cycles).pod(max_tile_out);
    h.pod(clock_ghz == 0.0 ? 0.0 : clock_ghz);
    return h.digest();
  }
};

}  // namespace edea::core
