// nonconv_unit.hpp - the Non-Conv unit array of Fig. 4 / Fig. 6.
//
// Eight parallel units, each computing the folded dequantization + BN +
// ReLU + requantization affine y = clamp(round(k*x + b), 0, 127) with k, b
// in Q8.16. The same array is time-shared for the DWC-to-PWC transfer
// (per-input-channel parameters from the offline buffer) and for the PWC
// write-back path (per-output-channel parameters); the two uses are counted
// separately so the power model can attribute activity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/fixed_point.hpp"
#include "core/config.hpp"
#include "nn/quant.hpp"

namespace edea::core {

class NonConvUnitArray {
 public:
  explicit NonConvUnitArray(const EdeaConfig& config) : config_(config) {
    config_.validate();
  }

  /// Number of parallel affine units (= Td = 8 in the paper).
  [[nodiscard]] int unit_count() const noexcept { return config_.td; }

  /// Applies per-channel parameters to a channel-innermost block of
  /// accumulators: value i belongs to channel (i % channels). This matches
  /// both use sites (DWC tiles are [row][col][channel], PWC write-back
  /// blocks are [row][col][kernel]).
  void apply_block(std::span<const std::int32_t> acc,
                   std::span<const nn::NonConvChannelParams> params,
                   int channels, std::span<std::int8_t> out);

  /// Cycles a block of `values` occupies the unit array (ceil division by
  /// the unit count) - the pipeline absorbs these inside the 9-cycle
  /// initiation, but the power model still wants the op count.
  [[nodiscard]] std::int64_t block_cycles(std::int64_t values) const noexcept {
    return (values + unit_count() - 1) / unit_count();
  }

  [[nodiscard]] std::int64_t transfer_ops() const noexcept {
    return transfer_ops_;
  }
  [[nodiscard]] std::int64_t writeback_ops() const noexcept {
    return writeback_ops_;
  }
  [[nodiscard]] std::int64_t total_ops() const noexcept {
    return transfer_ops_ + writeback_ops_;
  }

  /// Marks subsequent apply_block calls as write-back (vs transfer) work.
  void set_writeback_mode(bool writeback) noexcept { writeback_ = writeback; }

  void reset_counters() noexcept {
    transfer_ops_ = 0;
    writeback_ops_ = 0;
  }

 private:
  EdeaConfig config_;
  bool writeback_ = false;
  std::int64_t transfer_ops_ = 0;
  std::int64_t writeback_ops_ = 0;
};

}  // namespace edea::core
