#include "core/tiler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace edea::core {

std::int64_t BufferTile::valid_input_elements(int image_rows,
                                              int image_cols) const {
  const int r0 = std::max(in_row0, 0);
  const int r1 = std::min(in_row0 + in_rows, image_rows);
  const int c0 = std::max(in_col0, 0);
  const int c1 = std::min(in_col0 + in_cols, image_cols);
  if (r1 <= r0 || c1 <= c0) return 0;
  return std::int64_t{1} * (r1 - r0) * (c1 - c0);
}

Tiler::Tiler(const EdeaConfig& config, const nn::DscLayerSpec& spec)
    : config_(config), spec_(spec) {
  config_.validate();
  EDEA_REQUIRE(spec.dilation >= 1, "DWC dilation must be >= 1");
  EDEA_REQUIRE(spec.depth_multiplier >= 1, "depth multiplier must be >= 1");
  const int N = spec.out_rows();
  const int M = spec.out_cols();
  EDEA_REQUIRE(N > 0 && M > 0, "layer output must be non-empty");

  // Buffer tiles: chunks of at most tile_out x tile_out outputs, where
  // tile_out shrinks below max_tile_out when dilation inflates a tile's
  // input halo past the (fixed) DWC ifmap buffer. The TimingModel steps
  // by the same value - the Eq. 1/2 cycle assertion depends on it.
  const int tile_out =
      config_.effective_max_tile_out(spec.stride, spec.dilation);
  if (tile_out == 0) {
    throw ResourceError("dilation " + std::to_string(spec.dilation) +
                        " at stride " + std::to_string(spec.stride) +
                        " overflows the DWC ifmap buffer even for a 1x1 "
                        "output tile");
  }
  const int eff_kernel = (spec.kernel - 1) * spec.dilation + 1;
  for (int r0 = 0; r0 < N; r0 += tile_out) {
    const int rows = std::min(tile_out, N - r0);
    for (int c0 = 0; c0 < M; c0 += tile_out) {
      const int cols = std::min(tile_out, M - c0);
      BufferTile t;
      t.out_row0 = r0;
      t.out_col0 = c0;
      t.out_rows = rows;
      t.out_cols = cols;
      // Input region: first tap of the first output to last tap of the
      // last output (inclusive), in unpadded coordinates.
      t.in_row0 = r0 * spec.stride - spec.padding;
      t.in_col0 = c0 * spec.stride - spec.padding;
      t.in_rows = (rows - 1) * spec.stride + eff_kernel;
      t.in_cols = (cols - 1) * spec.stride + eff_kernel;
      tiles_.push_back(t);
    }
  }

  // Slices iterate the *intermediate* (post-multiplier) channel axis: the
  // DWC weight/Non-Conv/PWC loops are all per intermediate channel, and
  // each lane reads input channel (channel / depth_multiplier).
  for (int d0 = 0; d0 < spec.intermediate_channels(); d0 += config_.td) {
    slices_.push_back(ChannelSlice{
        d0, std::min(config_.td, spec.intermediate_channels() - d0)});
  }

  for (int k0 = 0; k0 < spec.out_channels; k0 += config_.tk) {
    groups_.push_back(
        KernelGroup{k0, std::min(config_.tk, spec.out_channels - k0)});
  }
}

std::int64_t Tiler::max_tile_input_bytes() const {
  std::int64_t worst = 0;
  for (const BufferTile& t : tiles_) {
    worst = std::max(worst, std::int64_t{1} * t.in_rows * t.in_cols *
                                config_.td);
  }
  return worst;
}

std::pair<std::size_t, std::size_t> Tiler::tile_chunk(int chunks,
                                                      int chunk) const {
  EDEA_REQUIRE(chunks >= 1, "tile partition needs at least one chunk");
  EDEA_REQUIRE(chunk >= 0 && chunk < chunks, "chunk index out of range");
  const auto n = tiles_.size();
  const auto c = static_cast<std::size_t>(chunks);
  const auto w = static_cast<std::size_t>(chunk);
  return {n * w / c, n * (w + 1) / c};
}

std::int64_t Tiler::max_tile_psum_entries() const {
  std::int64_t worst = 0;
  for (const BufferTile& t : tiles_) {
    worst = std::max(worst, std::int64_t{1} * t.out_rows * t.out_cols *
                                spec_.out_channels);
  }
  return worst;
}

}  // namespace edea::core
