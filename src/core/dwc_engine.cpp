#include "core/dwc_engine.hpp"

#include "util/check.hpp"

namespace edea::core {

DwcEngine::DwcEngine(const EdeaConfig& config)
    : config_(config), tree_(config.kernel * config.kernel) {
  config_.validate();
}

void DwcEngine::load_weights(const std::vector<std::int8_t>& weights,
                             int channels) {
  EDEA_REQUIRE(channels > 0 && channels <= config_.td,
               "DWC weight slice channel count must be in (0, Td]");
  EDEA_REQUIRE(weights.size() == static_cast<std::size_t>(
                                     config_.kernel * config_.kernel *
                                     channels),
               "DWC weight slice size mismatch");
  weights_ = weights;
  weight_channels_ = channels;
}

KernelShapeKey DwcEngine::shape_key(int stride, int dilation,
                                    int depth_multiplier) const noexcept {
  KernelShapeKey key;
  key.family = OpFamily::kDwc;
  key.kernel = config_.kernel;
  key.stride = stride;
  key.dilation = dilation;
  key.depth_multiplier = depth_multiplier;
  return key;
}

void DwcEngine::set_kernel_policy(KernelPolicy policy) noexcept {
  policy_ = policy;
  cached_fn_ = nullptr;
}

DwcStepOutput DwcEngine::run_step(const DwcWindow& window, int stride,
                                  int dilation, DwcKernelFn fn,
                                  arch::MacActivity& activity) const {
  EDEA_REQUIRE(stride == 1 || stride == 2, "DWC stride must be 1 or 2");
  EDEA_REQUIRE(dilation >= 1, "DWC dilation must be >= 1");
  EDEA_REQUIRE(weight_channels_ > 0, "DWC weights not loaded");
  EDEA_REQUIRE(window.channels == weight_channels_,
               "window channel count must match loaded weights");
  EDEA_REQUIRE(window.extent == config_.dwc_window_extent(stride, dilation),
               "window extent must match stride/dilation geometry");

  const int k = config_.kernel;
  DwcStepOutput out;
  out.rows = config_.tn;
  out.cols = config_.tm;
  out.channels = window.channels;
  out.acc.resize(static_cast<std::size_t>(out.rows * out.cols * out.channels));

  DwcKernelArgs args;
  args.window = window.values.data();
  args.extent = window.extent;
  args.channels = window.channels;
  args.weights = weights_.data();
  args.tn = config_.tn;
  args.tm = config_.tm;
  args.kernel = k;
  args.stride = stride;
  args.dilation = dilation;
  args.acc = out.acc.data();
  args.activity = &activity;
  fn(args);

  // Lanes belonging to channels absent from this slice idle this cycle
  // (never happens for MobileNetV1, whose channel counts are multiples of
  // Td, but the engine is general). Idle accounting lives above the kernel
  // boundary so every kernel sees the same contract.
  const int idle_lanes =
      (config_.td - window.channels) * config_.tn * config_.tm * k * k;
  for (int i = 0; i < idle_lanes; ++i) lane_.idle(activity);

  return out;
}

DwcStepOutput DwcEngine::step(const DwcWindow& window, int stride,
                              int dilation, int depth_multiplier) {
  DwcKernelFn fn = &generic_dwc_kernel;
  if (policy_ != KernelPolicy::kForceGeneric) {
    const KernelShapeKey key = shape_key(stride, dilation, depth_multiplier);
    if (cached_fn_ == nullptr || !(cached_key_ == key)) {
      cached_key_ = key;
      cached_fn_ = KernelDispatch::instance().find_dwc(key);
    }
    fn = cached_fn_;
  }
  return run_step(window, stride, dilation, fn, activity_);
}

DwcStepOutput DwcEngine::step(const DwcWindow& window, int stride,
                              int dilation, int depth_multiplier,
                              arch::MacActivity& activity) const {
  const DwcKernelFn fn =
      policy_ == KernelPolicy::kForceGeneric
          ? &generic_dwc_kernel
          : KernelDispatch::instance().find_dwc(
                shape_key(stride, dilation, depth_multiplier));
  return run_step(window, stride, dilation, fn, activity);
}

void DwcEngine::idle_cycle() {
  for (int i = 0; i < mac_count(); ++i) lane_.idle(activity_);
}

}  // namespace edea::core
