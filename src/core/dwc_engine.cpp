#include "core/dwc_engine.hpp"

#include "util/check.hpp"

namespace edea::core {

DwcEngine::DwcEngine(const EdeaConfig& config)
    : config_(config), tree_(config.kernel * config.kernel) {
  config_.validate();
  products_.resize(static_cast<std::size_t>(tree_.fan_in()));
}

void DwcEngine::load_weights(const std::vector<std::int8_t>& weights,
                             int channels) {
  EDEA_REQUIRE(channels > 0 && channels <= config_.td,
               "DWC weight slice channel count must be in (0, Td]");
  EDEA_REQUIRE(weights.size() == static_cast<std::size_t>(
                                     config_.kernel * config_.kernel *
                                     channels),
               "DWC weight slice size mismatch");
  weights_ = weights;
  weight_channels_ = channels;
}

DwcStepOutput DwcEngine::step(const DwcWindow& window, int stride,
                              int dilation) {
  EDEA_REQUIRE(stride == 1 || stride == 2, "DWC stride must be 1 or 2");
  EDEA_REQUIRE(dilation >= 1, "DWC dilation must be >= 1");
  EDEA_REQUIRE(weight_channels_ > 0, "DWC weights not loaded");
  EDEA_REQUIRE(window.channels == weight_channels_,
               "window channel count must match loaded weights");
  EDEA_REQUIRE(window.extent == config_.dwc_window_extent(stride, dilation),
               "window extent must match stride/dilation geometry");

  const int k = config_.kernel;
  DwcStepOutput out;
  out.rows = config_.tn;
  out.cols = config_.tm;
  out.channels = window.channels;
  out.acc.resize(static_cast<std::size_t>(out.rows * out.cols * out.channels));

  for (int ch = 0; ch < window.channels; ++ch) {
    for (int ty = 0; ty < config_.tn; ++ty) {
      for (int tx = 0; tx < config_.tm; ++tx) {
        // One 9-input adder tree instance: 3x3 products for this output.
        for (int i = 0; i < k; ++i) {
          for (int j = 0; j < k; ++j) {
            const std::int8_t a = window.at(ty * stride + i * dilation,
                                            tx * stride + j * dilation, ch);
            const std::int8_t w = weights_[static_cast<std::size_t>(
                (i * k + j) * weight_channels_ + ch)];
            products_[static_cast<std::size_t>(i * k + j)] =
                lane_.multiply(a, w, activity_);
          }
        }
        out.acc[static_cast<std::size_t>((ty * out.cols + tx) * out.channels +
                                         ch)] = tree_.sum(products_);
      }
    }
  }

  // Lanes belonging to channels absent from this slice idle this cycle
  // (never happens for MobileNetV1, whose channel counts are multiples of
  // Td, but the engine is general).
  const int idle_lanes =
      (config_.td - window.channels) * config_.tn * config_.tm * k * k;
  for (int i = 0; i < idle_lanes; ++i) lane_.idle(activity_);

  return out;
}

void DwcEngine::idle_cycle() {
  for (int i = 0; i < mac_count(); ++i) lane_.idle(activity_);
}

}  // namespace edea::core
