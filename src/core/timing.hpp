// timing.hpp - the analytic latency model of Sec. III-D (Eq. 1 and Eq. 2).
//
//   Lat_tile  = (9 + ceil(N/Tn) * ceil(M/Tm) * ceil(K/Tk)) * T_period   (1)
//   Lat_total = Lat_tile * N_tiles * ceil(D/Td)                         (2)
//
// where in Eq. 1 N/M are the output extents covered by one ifmap-buffer
// tile (at most 8x8) and in Eq. 2 N_tiles is the number of such buffer
// tiles. The cycle-accurate simulator must agree with this model exactly;
// tests assert the equality for every MobileNetV1 layer and for randomized
// layer geometries.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "nn/layers.hpp"

namespace edea::core {

/// Latency decomposition for one layer.
struct LayerTiming {
  std::int64_t passes = 0;        ///< buffer tiles x channel slices
  std::int64_t init_cycles = 0;   ///< 9 x passes
  std::int64_t compute_cycles = 0;  ///< spatial x kernel-group steps
  std::int64_t total_cycles = 0;

  std::int64_t dwc_active_cycles = 0;  ///< cycles the DWC engine fires
  std::int64_t pwc_active_cycles = 0;  ///< cycles the PWC engine fires

  /// Wall-clock nanoseconds at the configured frequency.
  [[nodiscard]] double time_ns(double clock_ghz) const noexcept {
    return static_cast<double>(total_cycles) / clock_ghz;
  }

  /// Field-wise merge. Every field is a sum over passes, and buffer tiles
  /// partition the passes, so per-tile-worker partials merged in any fixed
  /// order reproduce the serial tally exactly (integer addition).
  LayerTiming& operator+=(const LayerTiming& other) noexcept {
    passes += other.passes;
    init_cycles += other.init_cycles;
    compute_cycles += other.compute_cycles;
    total_cycles += other.total_cycles;
    dwc_active_cycles += other.dwc_active_cycles;
    pwc_active_cycles += other.pwc_active_cycles;
    return *this;
  }

  friend bool operator==(const LayerTiming&, const LayerTiming&) = default;
};

/// Ceiling division for positive operands.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a,
                                              std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

class TimingModel {
 public:
  explicit TimingModel(EdeaConfig config) : config_(config) {
    config_.validate();
  }

  [[nodiscard]] const EdeaConfig& config() const noexcept { return config_; }

  /// Eq. 1 for one buffer tile covering tile_rows x tile_cols outputs.
  [[nodiscard]] std::int64_t tile_pass_cycles(int tile_rows, int tile_cols,
                                              int out_channels) const;

  /// Eq. 2 over the whole layer (summing ragged edge tiles exactly).
  [[nodiscard]] LayerTiming layer_timing(const nn::DscLayerSpec& spec) const;

  /// Throughput in GOPS (1 MAC = 2 ops) at the configured clock.
  [[nodiscard]] double layer_throughput_gops(const nn::DscLayerSpec& spec)
      const;

  /// Number of ifmap-buffer tiles Eq. 2 multiplies by.
  [[nodiscard]] std::int64_t buffer_tile_count(const nn::DscLayerSpec& spec)
      const;

 private:
  EdeaConfig config_;
};

}  // namespace edea::core
