#include "core/sweep_runner.hpp"

#include <exception>

#include "core/accelerator.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace edea::core {

namespace {

/// Runs one job on a fresh accelerator; never throws - failures become
/// part of the outcome so one infeasible configuration cannot take down
/// the other jobs of a sweep.
SweepOutcome evaluate(const SweepJob& job) {
  SweepOutcome out;
  out.name = job.name;
  out.config = job.config;
  try {
    EdeaAccelerator accel(job.config);
    out.result = accel.run_network(*job.layers, *job.input);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace

SweepRunner::SweepRunner(Options options) : options_(options) {
  EDEA_REQUIRE(options_.parallelism >= 0,
               "parallelism must be 0 (auto), 1 (serial), or a thread count");
}

std::vector<SweepOutcome> SweepRunner::run(
    const std::vector<SweepJob>& jobs) const {
  for (const SweepJob& job : jobs) {
    EDEA_REQUIRE(job.layers != nullptr && job.input != nullptr,
                 "sweep job '" + job.name + "' must reference a network");
  }

  std::vector<SweepOutcome> outcomes(jobs.size());
  util::run_indexed(options_.parallelism,
                    static_cast<std::int64_t>(jobs.size()),
                    [&jobs, &outcomes](std::int64_t i) {
                      outcomes[static_cast<std::size_t>(i)] =
                          evaluate(jobs[static_cast<std::size_t>(i)]);
                    });
  return outcomes;
}

}  // namespace edea::core
