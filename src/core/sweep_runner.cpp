#include "core/sweep_runner.hpp"

#include <exception>
#include <utility>

#include "core/accelerator.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace edea::core {

SweepOutcome evaluate_job(const SweepJob& job, int tile_parallelism) {
  EDEA_REQUIRE(job.layers != nullptr && job.input != nullptr,
               "sweep job '" + job.name + "' must reference a network");
  EDEA_REQUIRE(tile_parallelism >= 1,
               "tile_parallelism must be >= 1 (1 = serial tiles)");
  EDEA_REQUIRE(job.batch >= 1, "sweep job '" + job.name +
                                   "' must run a positive batch, got " +
                                   std::to_string(job.batch));
  EDEA_REQUIRE(job.dilation >= 1, "sweep job '" + job.name +
                                      "' must have dilation >= 1, got " +
                                      std::to_string(job.dilation));
  EDEA_REQUIRE(job.depth_multiplier >= 1,
               "sweep job '" + job.name +
                   "' must have depth_multiplier >= 1, got " +
                   std::to_string(job.depth_multiplier));
  const std::string backend_id =
      job.backend.empty() ? std::string(kDefaultBackendId) : job.backend;
  EDEA_REQUIRE(backend_known(backend_id),
               "sweep job '" + job.name + "' names unknown backend '" +
                   backend_id + "' (known: " + known_backends_string() + ")");
  SweepOutcome out;
  out.name = job.name;
  out.config = job.config;
  out.backend = backend_id;
  out.batch = job.batch;
  out.dilation = job.dilation;
  out.depth_multiplier = job.depth_multiplier;
  try {
    // The backend constructor validates the configuration; an infeasible
    // point throws here or during the run, and either way is data.
    std::unique_ptr<AcceleratorBackend> accel =
        make_backend(backend_id, job.config);
    accel->set_tile_parallelism(tile_parallelism);
    std::vector<NetworkRunResult> images =
        accel->run_network_batch(*job.layers, *job.input, job.batch);
    // All images are bit-identical by the batch contract; the first one
    // stands for the run (and carries the batched plan's arena peak).
    out.result = std::move(images.front());
    out.summary = out.result.summary(job.config.clock_ghz);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

std::uint64_t network_fingerprint(const std::vector<nn::QuantDscLayer>& layers,
                                  const nn::Int8Tensor& input) {
  util::Fnv1a64 h;
  h.pod(static_cast<std::uint64_t>(layers.size()));
  for (const nn::QuantDscLayer& layer : layers) {
    // DscLayerSpec is a packed block of ints - safe to hash wholesale.
    h.pod(layer.spec);
    h.span(layer.dwc_weights.storage());
    h.span(layer.pwc_weights.storage());
    h.pod(layer.input_scale.scale);
    h.pod(layer.intermediate_scale.scale);
    h.pod(layer.output_scale.scale);
    // The fixed-point channel parameters (raw Q8.16 pairs) are what the
    // datapath consumes; the retained float values are analysis-only and
    // deliberately excluded.
    h.span(layer.nonconv1.channels);
    h.span(layer.nonconv2.channels);
  }
  h.pod(static_cast<std::uint64_t>(input.rank()));
  for (std::size_t axis = 0; axis < input.rank(); ++axis) {
    h.pod(input.dim(axis));
  }
  h.span(input.storage());
  return h.digest();
}

SweepRunner::SweepRunner(Options options) : options_(options) {
  options_.validate();
}

std::vector<SweepOutcome> SweepRunner::run(
    const std::vector<SweepJob>& jobs) const {
  for (const SweepJob& job : jobs) {
    EDEA_REQUIRE(job.layers != nullptr && job.input != nullptr,
                 "sweep job '" + job.name + "' must reference a network");
  }

  std::vector<SweepOutcome> outcomes(jobs.size());
  // Two-level parallelism: job i may itself split each layer's tiles over
  // tile_parallelism workers (those always borrow the process-wide shared
  // pool, never this sweep's dedicated one - see docs/ARCHITECTURE.md).
  const int tile_parallelism = options_.tile_parallelism;
  const std::string& default_backend = options_.backend;
  util::run_indexed(
      options_.parallelism, static_cast<std::int64_t>(jobs.size()),
      [&jobs, &outcomes, tile_parallelism, &default_backend](std::int64_t i) {
        SweepJob job = jobs[static_cast<std::size_t>(i)];
        if (job.backend.empty()) job.backend = default_backend;
        outcomes[static_cast<std::size_t>(i)] =
            evaluate_job(job, tile_parallelism);
      });
  return outcomes;
}

}  // namespace edea::core
