// sweep_runner.hpp - concurrent evaluation of independent simulation jobs.
//
// A sweep is a list of (network, accelerator config) pairs - the shape of
// every design-space study in the paper (Sec. II DSE, Sec. III-B scaling)
// and of the reproduction benches. Jobs are independent by construction:
// each one gets its own EdeaAccelerator instance (the accelerator carries
// per-run SRAM and counter state and must never be shared across threads),
// while the quantized layers and input tensors are read-only and may be
// shared freely. Results come back in job order regardless of scheduling,
// so a parallel sweep is bit-identical to a serial one.
#pragma once

#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/config.hpp"
#include "core/run_result.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace edea::util {
class ThreadPool;
}

namespace edea::core {

/// One simulation job: run `layers` on an accelerator built from `config`,
/// starting from `input`. The pointed-to network and tensor must outlive
/// the sweep; they are never written.
struct SweepJob {
  std::string name;
  EdeaConfig config = EdeaConfig::paper();
  const std::vector<nn::QuantDscLayer>* layers = nullptr;
  const nn::Int8Tensor* input = nullptr;
  /// Accelerator backend id (core/backend.hpp registry) this job simulates
  /// on. Empty means "the caller's default": evaluate_job resolves it to
  /// kDefaultBackendId, SweepRunner to its SweepOptions::backend. An
  /// unknown id is a PreconditionError - a typo'd backend is a caller bug,
  /// not a design point.
  std::string backend;
  /// Images to run through one planned setup
  /// (AcceleratorBackend::run_network_batch). Per-image arithmetic and
  /// timing are bit-identical to `batch` standalone runs; only the
  /// summary's peak_arena_bytes reflects the batched plan. < 1 is a
  /// PreconditionError.
  int batch = 1;
  /// Workload-transform knobs the resolver applied when materializing
  /// `layers` (see WorkloadCatalog::resolve): the DWC dilation and the
  /// extra depth multiplier. Already baked into every layer spec - carried
  /// here so outcomes can echo them and the service cache can key on them
  /// without re-deriving from the layers. < 1 is a PreconditionError.
  int dilation = 1;
  int depth_multiplier = 1;
  /// Precomputed network_fingerprint(*layers, *input), or 0 for "not
  /// computed". Hashing a workload touches every weight and input byte -
  /// hundreds of microseconds for real networks - so callers that submit
  /// the same immutable workload many times (the simulation service via
  /// WorkloadCatalog) compute it once at materialization and carry it
  /// here. Consumers must fall back to hashing when it is 0.
  std::uint64_t fingerprint = 0;
};

/// Result of one job. A job whose configuration cannot map the network
/// (ResourceError, PreconditionError, ...) reports the failure in `error`
/// instead of aborting the sweep - infeasible points are data in a DSE.
struct SweepOutcome {
  std::string name;
  EdeaConfig config;
  /// The resolved backend id this outcome was simulated on (never empty -
  /// an empty SweepJob::backend resolves before evaluation). Part of the
  /// protocol line and of the service cache key: the same workload and
  /// configuration on different dataflows are different experiments.
  std::string backend = std::string(kDefaultBackendId);
  /// The job's batch size, echoed for the protocol line (batch > 1 is a
  /// distinct cache key: its arena plan and peak differ).
  int batch = 1;
  /// The job's workload-transform knobs, echoed for the protocol line
  /// (each > 1 is a distinct cache key: the transformed network computes
  /// something else).
  int dilation = 1;
  int depth_multiplier = 1;
  bool ok = false;
  std::string error;
  NetworkRunResult result;
  /// True iff this outcome was served from a memoizing cache rather than
  /// simulated. Always false from SweepRunner itself; the simulation
  /// service (src/service) sets it on cache hits.
  bool cache_hit = false;
  /// Headline digest of `result`, captured when the outcome was produced
  /// (ok outcomes only - it stays default for failures). This is what the
  /// service protocol reports and what the persisted result cache stores.
  RunSummary summary;
  /// True when this outcome was served at summary level: `summary` (and
  /// ok/error) are authoritative but `result` is empty. Set for outcomes
  /// from the persisted summary cache of a restarted service (per-layer
  /// data does not survive restarts) and for every cache-served outcome
  /// on the service's streaming path, where copying the full result per
  /// request would dominate hit latency (see
  /// SimulationService::CompletionCallback).
  bool summary_only = false;
};

/// Execution policy of a SweepRunner.
struct SweepOptions {
  /// Worker parallelism: 0 = use the shared pool (hardware concurrency),
  /// 1 = run strictly serially on the calling thread (the reference path),
  /// n > 1 = use a dedicated pool of n threads. Negative values are a
  /// precondition violation - there is no "negative thread count" to clamp
  /// to, and silently coercing would mask caller arithmetic bugs.
  int parallelism = 0;

  /// Tile-level parallelism *inside* each job: every layer's buffer tiles
  /// are split over at most this many workers on the process-wide shared
  /// pool (see EdeaAccelerator::set_tile_parallelism). 1 (the default) is
  /// the strictly serial reference path. Unlike `parallelism` there is no
  /// 0 = auto policy: tile workers compete with sweep-level jobs for the
  /// same pool, so the per-job width must be stated explicitly - zero and
  /// negative values are a precondition violation. Results are
  /// bit-identical at every width.
  int tile_parallelism = 1;

  /// Backend id applied to jobs whose SweepJob::backend is empty - the
  /// sweep-wide default dataflow. Jobs naming their own backend override
  /// it, so one sweep can mix backends (the cross-dataflow experiment).
  std::string backend = std::string(kDefaultBackendId);

  void validate() const {
    EDEA_REQUIRE(
        parallelism >= 0,
        "parallelism must be 0 (auto), 1 (serial), or a thread count");
    EDEA_REQUIRE(tile_parallelism >= 1,
                 "tile_parallelism must be >= 1 (1 = serial tiles; there is "
                 "no auto policy at tile level)");
    EDEA_REQUIRE(backend_known(backend),
                 "unknown sweep backend '" + backend +
                     "' (known: " + known_backends_string() + ")");
  }
};

/// Runs one job on a fresh accelerator built from the job's backend id
/// through the registry (empty resolves to kDefaultBackendId). Never
/// propagates simulation failures: an infeasible configuration
/// (ResourceError, ...) comes back with ok == false and the failure text
/// in `error`, so callers that fan jobs out (SweepRunner, the simulation
/// service) can treat infeasible points as data. Null network/input
/// pointers are still a hard PreconditionError - that is a caller bug,
/// not a design point - and so are a tile_parallelism < 1 (see
/// SweepOptions::tile_parallelism) and an unknown backend id.
[[nodiscard]] SweepOutcome evaluate_job(const SweepJob& job,
                                        int tile_parallelism = 1);

/// Order-sensitive 64-bit fingerprint of a simulation workload: the layer
/// geometries, quantized weights, activation scales, folded Non-Conv
/// parameters, and the input tensor - everything that determines a run's
/// output besides the accelerator configuration. Two workloads with equal
/// fingerprints are (up to hash collision) the same computation, which is
/// what the simulation service keys its result cache on.
[[nodiscard]] std::uint64_t network_fingerprint(
    const std::vector<nn::QuantDscLayer>& layers, const nn::Int8Tensor& input);

class SweepRunner {
 public:
  using Options = SweepOptions;

  explicit SweepRunner(Options options = Options());

  /// Evaluates every job; outcome i corresponds to jobs[i].
  [[nodiscard]] std::vector<SweepOutcome> run(
      const std::vector<SweepJob>& jobs) const;

 private:
  Options options_;
};

}  // namespace edea::core
