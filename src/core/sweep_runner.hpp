// sweep_runner.hpp - concurrent evaluation of independent simulation jobs.
//
// A sweep is a list of (network, accelerator config) pairs - the shape of
// every design-space study in the paper (Sec. II DSE, Sec. III-B scaling)
// and of the reproduction benches. Jobs are independent by construction:
// each one gets its own EdeaAccelerator instance (the accelerator carries
// per-run SRAM and counter state and must never be shared across threads),
// while the quantized layers and input tensors are read-only and may be
// shared freely. Results come back in job order regardless of scheduling,
// so a parallel sweep is bit-identical to a serial one.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/run_result.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace edea::util {
class ThreadPool;
}

namespace edea::core {

/// One simulation job: run `layers` on an accelerator built from `config`,
/// starting from `input`. The pointed-to network and tensor must outlive
/// the sweep; they are never written.
struct SweepJob {
  std::string name;
  EdeaConfig config = EdeaConfig::paper();
  const std::vector<nn::QuantDscLayer>* layers = nullptr;
  const nn::Int8Tensor* input = nullptr;
};

/// Result of one job. A job whose configuration cannot map the network
/// (ResourceError, PreconditionError, ...) reports the failure in `error`
/// instead of aborting the sweep - infeasible points are data in a DSE.
struct SweepOutcome {
  std::string name;
  EdeaConfig config;
  bool ok = false;
  std::string error;
  NetworkRunResult result;
};

/// Execution policy of a SweepRunner.
struct SweepOptions {
  /// Worker parallelism: 0 = use the shared pool (hardware concurrency),
  /// 1 = run strictly serially on the calling thread (the reference path),
  /// n > 1 = use a dedicated pool of n threads.
  int parallelism = 0;
};

class SweepRunner {
 public:
  using Options = SweepOptions;

  explicit SweepRunner(Options options = Options());

  /// Evaluates every job; outcome i corresponds to jobs[i].
  [[nodiscard]] std::vector<SweepOutcome> run(
      const std::vector<SweepJob>& jobs) const;

 private:
  Options options_;
};

}  // namespace edea::core
