// sram.hpp - on-chip SRAM buffer model.
//
// The accelerator (Fig. 4) instantiates five of these: DWC ifmap buffer,
// DWC weight buffer, offline (Non-Conv parameter) buffer, intermediate
// buffer, and PWC weight buffer. The model provides byte-addressed storage
// with a hard capacity limit (writing past capacity is a ResourceError: the
// tiler exists precisely because layers do not fit) and read/write counters.
//
// Storage comes in two modes: owning (the buffer allocates its own bytes)
// and span (the buffer models capacity/counters over externally planned
// bytes - an nn::Arena slice - so a worker's whole scratch set is one
// contiguous allocation). Behaviour is identical in both modes; a span
// buffer simply does not own its lifetime, which the provider (the
// accelerator's scratch arena) must outlive.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "arch/counters.hpp"
#include "util/check.hpp"

namespace edea::arch {

class SramBuffer {
 public:
  /// Owning mode: allocates (zeroed) storage of `capacity_bytes`.
  SramBuffer(std::string name, std::int64_t capacity_bytes)
      : name_(std::move(name)),
        storage_(check_capacity(capacity_bytes)),
        capacity_(capacity_bytes) {}

  /// Span mode: models the buffer over `capacity_bytes` of externally
  /// owned storage at `backing` (must be non-null and outlive the buffer).
  SramBuffer(std::string name, std::uint8_t* backing,
             std::int64_t capacity_bytes)
      : name_(std::move(name)), external_(backing), capacity_(capacity_bytes) {
    (void)check_capacity(capacity_bytes);
    EDEA_REQUIRE(backing != nullptr,
                 "span-mode SRAM '" + name_ + "' needs backing storage");
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool owns_storage() const noexcept {
    return external_ == nullptr;
  }

  /// Writes `size` bytes at `addr`. Counts one write access per call (the
  /// silicon writes a word or burst per port transaction, not per byte).
  void write(std::int64_t addr, const void* src, std::int64_t size) {
    bounds_check(addr, size, "write");
    std::memcpy(bytes() + addr, src, static_cast<std::size_t>(size));
    counter_.record_write(size);
  }

  /// Reads `size` bytes at `addr` into dst. Counts one read access.
  void read(std::int64_t addr, void* dst, std::int64_t size) {
    bounds_check(addr, size, "read");
    std::memcpy(dst, bytes() + addr, static_cast<std::size_t>(size));
    counter_.record_read(size);
  }

  /// Typed single-element helpers used by the engines.
  template <typename T>
  void store(std::int64_t index, T value) {
    write(index * static_cast<std::int64_t>(sizeof(T)), &value, sizeof(T));
  }

  template <typename T>
  [[nodiscard]] T load(std::int64_t index) {
    T value;
    read(index * static_cast<std::int64_t>(sizeof(T)), &value, sizeof(T));
    return value;
  }

  [[nodiscard]] const AccessCounter& counter() const noexcept {
    return counter_;
  }
  void reset_counters() noexcept { counter_.reset(); }

  /// Zeroes the contents without touching the counters (power-on state).
  void clear_contents() {
    std::uint8_t* p = bytes();
    std::memset(p, 0, static_cast<std::size_t>(capacity_));
  }

 private:
  static std::size_t check_capacity(std::int64_t capacity_bytes) {
    EDEA_REQUIRE(capacity_bytes > 0, "SRAM capacity must be positive");
    return static_cast<std::size_t>(capacity_bytes);
  }

  [[nodiscard]] std::uint8_t* bytes() noexcept {
    return external_ != nullptr ? external_ : storage_.data();
  }

  void bounds_check(std::int64_t addr, std::int64_t size,
                    const char* op) const {
    if (addr < 0 || size < 0 || addr + size > capacity_) {
      throw ResourceError("SRAM '" + name_ + "': out-of-range " + op +
                          " at addr " + std::to_string(addr) + " size " +
                          std::to_string(size) + " (capacity " +
                          std::to_string(capacity_) + ")");
    }
  }

  std::string name_;
  std::vector<std::uint8_t> storage_;         ///< owning mode only
  std::uint8_t* external_ = nullptr;          ///< span mode only
  std::int64_t capacity_ = 0;
  AccessCounter counter_;
};

}  // namespace edea::arch
