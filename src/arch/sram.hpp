// sram.hpp - on-chip SRAM buffer model.
//
// The accelerator (Fig. 4) instantiates five of these: DWC ifmap buffer,
// DWC weight buffer, offline (Non-Conv parameter) buffer, intermediate
// buffer, and PWC weight buffer. The model provides byte-addressed storage
// with a hard capacity limit (writing past capacity is a ResourceError: the
// tiler exists precisely because layers do not fit) and read/write counters.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "arch/counters.hpp"
#include "util/check.hpp"

namespace edea::arch {

class SramBuffer {
 public:
  SramBuffer(std::string name, std::int64_t capacity_bytes)
      : name_(std::move(name)), storage_(check_capacity(capacity_bytes)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t capacity() const noexcept {
    return static_cast<std::int64_t>(storage_.size());
  }

  /// Writes `size` bytes at `addr`. Counts one write access per call (the
  /// silicon writes a word or burst per port transaction, not per byte).
  void write(std::int64_t addr, const void* src, std::int64_t size) {
    bounds_check(addr, size, "write");
    std::memcpy(storage_.data() + addr, src, static_cast<std::size_t>(size));
    counter_.record_write(size);
  }

  /// Reads `size` bytes at `addr` into dst. Counts one read access.
  void read(std::int64_t addr, void* dst, std::int64_t size) {
    bounds_check(addr, size, "read");
    std::memcpy(dst, storage_.data() + addr, static_cast<std::size_t>(size));
    counter_.record_read(size);
  }

  /// Typed single-element helpers used by the engines.
  template <typename T>
  void store(std::int64_t index, T value) {
    write(index * static_cast<std::int64_t>(sizeof(T)), &value, sizeof(T));
  }

  template <typename T>
  [[nodiscard]] T load(std::int64_t index) {
    T value;
    read(index * static_cast<std::int64_t>(sizeof(T)), &value, sizeof(T));
    return value;
  }

  [[nodiscard]] const AccessCounter& counter() const noexcept {
    return counter_;
  }
  void reset_counters() noexcept { counter_.reset(); }

  /// Zeroes the contents without touching the counters (power-on state).
  void clear_contents() {
    std::fill(storage_.begin(), storage_.end(), std::uint8_t{0});
  }

 private:
  static std::size_t check_capacity(std::int64_t capacity_bytes) {
    EDEA_REQUIRE(capacity_bytes > 0, "SRAM capacity must be positive");
    return static_cast<std::size_t>(capacity_bytes);
  }

  void bounds_check(std::int64_t addr, std::int64_t size,
                    const char* op) const {
    if (addr < 0 || size < 0 || addr + size > capacity()) {
      throw ResourceError("SRAM '" + name_ + "': out-of-range " + op +
                          " at addr " + std::to_string(addr) + " size " +
                          std::to_string(size) + " (capacity " +
                          std::to_string(capacity()) + ")");
    }
  }

  std::string name_;
  std::vector<std::uint8_t> storage_;
  AccessCounter counter_;
};

}  // namespace edea::arch
