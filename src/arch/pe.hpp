// pe.hpp - processing-element primitives: an int8 MAC lane and a binary
// adder tree, the two building blocks of both engines in Fig. 5.
//
// The engines in src/core are built from these so that structural claims
// of the paper (288 vs 512 multipliers, 9-input vs 8-input adder trees,
// tree depth) are explicit, testable properties rather than implicit loop
// bounds.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "arch/counters.hpp"
#include "util/check.hpp"

namespace edea::arch {

/// One int8 x int8 multiplier lane with activity tracking. The `activation`
/// operand is the one whose zero-ness gates switching power (Fig. 11).
class MacLane {
 public:
  /// Computes activation * weight, recording activity.
  [[nodiscard]] std::int32_t multiply(std::int8_t activation,
                                      std::int8_t weight,
                                      MacActivity& activity) const noexcept {
    activity.lane_cycles += 1;
    activity.useful_macs += 1;
    if (activation == 0) activity.zero_operand_macs += 1;
    return static_cast<std::int32_t>(activation) *
           static_cast<std::int32_t>(weight);
  }

  /// An idle cycle: the lane is clocked but does no useful work.
  void idle(MacActivity& activity) const noexcept {
    activity.lane_cycles += 1;
  }
};

/// Combinational adder tree over a fixed number of inputs. Depth is
/// ceil(log2(fan_in)); the paper's DWC engine uses 9-input trees (depth 4)
/// and the PWC engine 8-input trees (depth 3).
class AdderTree {
 public:
  explicit AdderTree(int fan_in) : fan_in_(fan_in) {
    EDEA_REQUIRE(fan_in > 0, "adder tree fan-in must be positive");
  }

  [[nodiscard]] int fan_in() const noexcept { return fan_in_; }

  [[nodiscard]] int depth() const noexcept {
    return fan_in_ <= 1
               ? 0
               : static_cast<int>(
                     std::bit_width(static_cast<unsigned>(fan_in_ - 1)));
  }

  /// Sums exactly fan_in() products. Pairwise reduction mirrors the
  /// hardware topology; for integer addition the result is order-invariant,
  /// and a unit test pins the equivalence to naive summation.
  [[nodiscard]] std::int32_t sum(std::span<const std::int32_t> products)
      const {
    EDEA_REQUIRE(products.size() == static_cast<std::size_t>(fan_in_),
                 "adder tree fed wrong number of products");
    scratch_.assign(products.begin(), products.end());
    while (scratch_.size() > 1) {
      std::size_t out = 0;
      for (std::size_t i = 0; i + 1 < scratch_.size(); i += 2) {
        scratch_[out++] = scratch_[i] + scratch_[i + 1];
      }
      if (scratch_.size() % 2 == 1) {
        scratch_[out++] = scratch_.back();
      }
      scratch_.resize(out);
    }
    return scratch_.empty() ? 0 : scratch_.front();
  }

 private:
  int fan_in_;
  mutable std::vector<std::int32_t> scratch_;
};

}  // namespace edea::arch
