// counters.hpp - access/activity counters shared by the memory and PE
// models. Every quantitative claim in the paper (access counts in Fig. 2/3,
// activity-dependent power in Fig. 11) ultimately reads these counters.
#pragma once

#include <cstdint>
#include <string>

namespace edea::arch {

/// Read/write event counter for a memory-like component.
struct AccessCounter {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t read_bytes = 0;
  std::int64_t write_bytes = 0;

  void record_read(std::int64_t bytes, std::int64_t count = 1) noexcept {
    reads += count;
    read_bytes += bytes;
  }
  void record_write(std::int64_t bytes, std::int64_t count = 1) noexcept {
    writes += count;
    write_bytes += bytes;
  }

  [[nodiscard]] std::int64_t total_accesses() const noexcept {
    return reads + writes;
  }
  [[nodiscard]] std::int64_t total_bytes() const noexcept {
    return read_bytes + write_bytes;
  }

  void reset() noexcept { *this = AccessCounter{}; }

  AccessCounter& operator+=(const AccessCounter& other) noexcept {
    reads += other.reads;
    writes += other.writes;
    read_bytes += other.read_bytes;
    write_bytes += other.write_bytes;
    return *this;
  }

  /// Exact comparison - determinism tests assert counter bit-identity
  /// between serial and parallel runs, not approximate agreement.
  friend bool operator==(const AccessCounter&, const AccessCounter&) = default;
};

/// MAC-activity counter for one engine: total lane-cycles, useful MACs, and
/// MACs whose activation operand was zero (clock/power-gating opportunity -
/// the mechanism behind Fig. 11's power-vs-sparsity correlation).
struct MacActivity {
  std::int64_t lane_cycles = 0;   ///< PE lanes x active cycles offered
  std::int64_t useful_macs = 0;   ///< MACs that contributed to an output
  std::int64_t zero_operand_macs = 0;  ///< useful MACs with a zero activation

  [[nodiscard]] double utilization() const noexcept {
    return lane_cycles == 0 ? 0.0
                            : static_cast<double>(useful_macs) /
                                  static_cast<double>(lane_cycles);
  }

  /// Fraction of useful MACs whose activation input was zero.
  [[nodiscard]] double zero_operand_fraction() const noexcept {
    return useful_macs == 0 ? 0.0
                            : static_cast<double>(zero_operand_macs) /
                                  static_cast<double>(useful_macs);
  }

  void reset() noexcept { *this = MacActivity{}; }

  MacActivity& operator+=(const MacActivity& other) noexcept {
    lane_cycles += other.lane_cycles;
    useful_macs += other.useful_macs;
    zero_operand_macs += other.zero_operand_macs;
    return *this;
  }

  friend bool operator==(const MacActivity&, const MacActivity&) = default;
};

}  // namespace edea::arch
