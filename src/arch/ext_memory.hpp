// ext_memory.hpp - external (off-chip) memory traffic model.
//
// The feature maps themselves live in host tensors; what the architecture
// cares about - and what Fig. 3 plots - is *how many* external accesses
// each dataflow performs, split by traffic class. This model is therefore
// a categorized counter, not a storage array.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "arch/counters.hpp"
#include "util/check.hpp"

namespace edea::arch {

/// Traffic classes distinguished by the paper's analysis.
enum class TrafficClass : int {
  kActivation = 0,  ///< ifmap/ofmap elements (Fig. 2b upper bars, Fig. 3)
  kWeight = 1,      ///< DWC/PWC kernels (Fig. 2b lower bars)
  kParameter = 2,   ///< offline Non-Conv parameters (k, b pairs)
};

inline constexpr int kTrafficClassCount = 3;

[[nodiscard]] constexpr std::string_view traffic_class_name(
    TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::kActivation:
      return "activation";
    case TrafficClass::kWeight:
      return "weight";
    case TrafficClass::kParameter:
      return "parameter";
  }
  return "?";
}

class ExternalMemory {
 public:
  void record_read(TrafficClass c, std::int64_t elements,
                   std::int64_t bytes_per_element = 1) {
    EDEA_REQUIRE(elements >= 0, "negative element count");
    counter(c).record_read(elements * bytes_per_element, elements);
  }

  void record_write(TrafficClass c, std::int64_t elements,
                    std::int64_t bytes_per_element = 1) {
    EDEA_REQUIRE(elements >= 0, "negative element count");
    counter(c).record_write(elements * bytes_per_element, elements);
  }

  [[nodiscard]] const AccessCounter& counter(TrafficClass c) const {
    return counters_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] AccessCounter& counter(TrafficClass c) {
    return counters_[static_cast<std::size_t>(c)];
  }

  /// Total element accesses (reads + writes) of one class.
  [[nodiscard]] std::int64_t accesses(TrafficClass c) const {
    return counter(c).total_accesses();
  }

  [[nodiscard]] std::int64_t total_accesses() const {
    std::int64_t t = 0;
    for (const auto& c : counters_) t += c.total_accesses();
    return t;
  }

  void reset() {
    for (auto& c : counters_) c.reset();
  }

  /// Class-wise merge - tile-parallel layer runs accumulate external
  /// traffic into per-worker instances and reduce them in a fixed order.
  ExternalMemory& operator+=(const ExternalMemory& other) noexcept {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      counters_[i] += other.counters_[i];
    }
    return *this;
  }

  friend bool operator==(const ExternalMemory&, const ExternalMemory&) =
      default;

 private:
  std::array<AccessCounter, kTrafficClassCount> counters_{};
};

}  // namespace edea::arch
