// fixed_point.hpp - Q8.16 signed fixed-point arithmetic for the Non-Conv unit.
//
// The paper (Sec. III-C) folds dequantization + BatchNorm + ReLU +
// requantization into y = k*x + b with k and b stored as 24-bit fixed-point
// numbers: 8 integer bits, 16 fractional bits ("to cover all possible ranges
// of the values for k and b without losing precision"). This header is the
// single source of truth for that arithmetic: both the golden quantized
// reference model (src/nn) and the cycle-accurate accelerator (src/core)
// call into it, which is what makes the bit-exactness tests meaningful.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace edea::arch {

/// Signed Q8.16 fixed-point value stored in 24 bits (sign-extended into
/// int32_t). Representable range: [-128, 128 - 2^-16], resolution 2^-16.
class Q8_16 {
 public:
  static constexpr int kFractionBits = 16;
  static constexpr int kTotalBits = 24;
  static constexpr std::int32_t kOne = 1 << kFractionBits;  // 65536
  static constexpr std::int32_t kMaxRaw = (1 << (kTotalBits - 1)) - 1;
  static constexpr std::int32_t kMinRaw = -(1 << (kTotalBits - 1));

  constexpr Q8_16() = default;

  /// Wraps an already-encoded raw 24-bit pattern. Throws if out of range.
  static Q8_16 from_raw(std::int32_t raw) {
    EDEA_REQUIRE(raw >= kMinRaw && raw <= kMaxRaw,
                 "raw value outside signed 24-bit range");
    return Q8_16(raw);
  }

  /// Encodes a real number, rounding to nearest (ties away from zero).
  /// Throws PreconditionError if the value is outside [-128, 128).
  static Q8_16 from_double(double value) {
    const double scaled = value * static_cast<double>(kOne);
    const double rounded = std::nearbyint(scaled);
    EDEA_REQUIRE(rounded >= static_cast<double>(kMinRaw) &&
                     rounded <= static_cast<double>(kMaxRaw),
                 "value outside Q8.16 representable range [-128, 128)");
    return Q8_16(static_cast<std::int32_t>(rounded));
  }

  /// Saturating encode: values beyond the representable range clamp to the
  /// extremes instead of throwing (models the offline parameter packer).
  static Q8_16 from_double_saturating(double value) noexcept {
    const double scaled = value * static_cast<double>(kOne);
    double rounded = std::nearbyint(scaled);
    if (rounded > static_cast<double>(kMaxRaw)) {
      rounded = static_cast<double>(kMaxRaw);
    } else if (rounded < static_cast<double>(kMinRaw)) {
      rounded = static_cast<double>(kMinRaw);
    }
    return Q8_16(static_cast<std::int32_t>(rounded));
  }

  [[nodiscard]] constexpr std::int32_t raw() const noexcept { return raw_; }

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  /// Maximum encoding error introduced by from_double (half an LSB).
  static constexpr double quantization_step() noexcept {
    return 1.0 / static_cast<double>(kOne);
  }

  friend constexpr bool operator==(Q8_16 a, Q8_16 b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(Q8_16 a, Q8_16 b) noexcept {
    return a.raw_ != b.raw_;
  }

 private:
  constexpr explicit Q8_16(std::int32_t raw) : raw_(raw) {}
  std::int32_t raw_ = 0;
};

/// The Non-Conv datapath: y = clamp(round(k*acc + b), lo, hi).
///
/// acc is the integer convolution accumulator (paper: 24-bit; we carry
/// int32 and verify the 24-bit envelope separately). The multiply produces
/// a Q.16 value in 48 bits, b is added in Q.16, and rounding is
/// round-half-up implemented exactly as silicon would: add 2^15 then
/// arithmetic-shift-right by 16 (floor). The default clamp [0, 127] merges
/// ReLU with int8 output quantization.
[[nodiscard]] constexpr std::int32_t nonconv_affine(std::int32_t acc, Q8_16 k,
                                                    Q8_16 b,
                                                    std::int32_t clamp_lo = 0,
                                                    std::int32_t clamp_hi =
                                                        127) noexcept {
  const std::int64_t product =
      static_cast<std::int64_t>(k.raw()) * static_cast<std::int64_t>(acc);
  const std::int64_t sum_q16 = product + static_cast<std::int64_t>(b.raw());
  // Round half up: floor((x + 2^15) / 2^16). Arithmetic shift of a negative
  // value floors, matching a hardware adder + truncation implementation.
  const std::int64_t rounded = (sum_q16 + (1 << (Q8_16::kFractionBits - 1))) >>
                               Q8_16::kFractionBits;
  if (rounded < clamp_lo) return clamp_lo;
  if (rounded > clamp_hi) return clamp_hi;
  return static_cast<std::int32_t>(rounded);
}

/// Signed integer range check helper: does v fit in `bits` (two's
/// complement)? Used to validate the paper's 24-bit accumulator claim on
/// realistic data.
[[nodiscard]] constexpr bool fits_signed_bits(std::int64_t v,
                                              int bits) noexcept {
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  return v >= lo && v <= hi;
}

}  // namespace edea::arch
