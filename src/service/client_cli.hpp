// client_cli.hpp - command line of the simulation client example, as a
// library component so the flag grammar and the --help text are unit
// testable (tests/server_cli_test.cpp asserts every documented flag
// appears in the help output) - the same treatment server_cli.hpp gives
// the server, applied to the client.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace edea::service {

/// Parsed client command line. `error` empty means the parse succeeded.
struct ClientConfig {
  bool help = false;             ///< --help: print usage, exit 0
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        ///< --connect HOST:PORT
  bool connect_given = false;
  bool verify = false;           ///< --verify: byte-compare vs stdio reference
  bool expect_all_hits = false;  ///< --expect-all-hits: persisted replay
  /// --backend ID: default backend of the *in-process reference* session
  /// --verify recomputes against. Must mirror the server's --backend or
  /// the reference diverges by construction. Validated against the
  /// registry at parse time.
  std::string backend;  ///< empty = the protocol default ("edea")
  /// --batch N: default batch of the in-process --verify reference. Must
  /// mirror the server's --batch for the same reason. Validated >= 1 at
  /// parse time; 0 = the protocol default (1).
  int batch = 0;
  /// --dilation N / --depth-multiplier N: default workload transforms of
  /// the in-process --verify reference. Must mirror the server's flags.
  /// Validated >= 1 at parse time; 0 = the protocol default (1).
  int dilation = 0;
  int depth_multiplier = 0;
  /// --pipeline N: keep up to N requests in flight using batch frames and
  /// `mode unordered` streaming (service/pipeline_client.hpp); responses
  /// still print in request order, so --verify composes. Validated in
  /// [1, kMaxFrameLines] at parse time; 0 = the legacy one-shot sender.
  std::size_t pipeline = 0;
  /// --ordered: with --pipeline, skip the `mode unordered` negotiation
  /// and pipeline over the byte-exact ordered reference protocol.
  bool ordered = false;

  std::string error;  ///< non-empty: bad usage, message says why
};

/// Parses argv (past argv[0]). Never throws; any problem - unknown flag,
/// missing or malformed value (bad HOST:PORT, unknown backend id,
/// --expect-all-hits without --verify, missing --connect) - comes back in
/// `error`.
[[nodiscard]] ClientConfig parse_client_args(int argc,
                                             const char* const* argv);

/// The full usage/help text: every flag with its value shape and a
/// one-line description - the single source of truth the --help test pins
/// each documented option against.
[[nodiscard]] std::string client_usage();

}  // namespace edea::service
