// router.hpp - the cluster tier: consistent-hash request routing across
// worker simulation servers.
//
// One simulation_server process tops out when its dispatch layer saturates
// (see bench_service_throughput). The cluster router is the next level of
// the same idea the dispatch cache already embodies - route each request
// to the owner of its data instead of funneling everything through one
// serialized path: a ClusterRouter speaks the ordinary line protocol to
// clients, shards every `run` line across N worker server processes by its
// *cache key* (network@seed, config, backend, batch, dilation,
// depth_multiplier - hashed through service/hash_ring.hpp), and merges the
// replies back into the client's session.
//
// Invariants the tests pin (tests/router_test.cpp):
//
//   byte-identity   In ordered mode, a routed serve is byte-identical to a
//                   single-process stdio serve of the same request stream.
//                   Routing by full cache key is what makes this hold: a
//                   repeated key lands on the same worker, so the cluster's
//                   hit/miss/coalescing pattern equals the single process's,
//                   and replies are emitted in request-id order regardless
//                   of which shard produced them. Protocol errors, mode
//                   echoes, and frame violations are answered locally with
//                   the identical code paths a Session uses.
//
//   merged stats    `stats` is a cluster barrier: after every preceding
//                   request completes, the router fans `stats` out to every
//                   live worker and sums the per-shard counters in sorted
//                   worker order - deterministic, and equal to the
//                   single-process counters for any stream that fits in
//                   every shard's LRU (no evictions to split).
//
//   failover        A worker death (connection drop) removes its node from
//                   the ring and re-forwards its in-flight requests to the
//                   surviving owners under jittered exponential backoff
//                   (util/backoff.hpp), bounded by max_attempts. Replies
//                   are never lost (every request finalizes exactly once:
//                   a reply, a busy give-up, or an error line naming the
//                   failure) and never duplicated (a request is on at most
//                   one worker's reply FIFO at a time; it is re-sent only
//                   after its FIFO entry is stolen from a dead connection).
//                   Deterministic simulations make the re-run idempotent.
//
// Workers are completely unmodified simulation_server processes: the
// router holds one ordered-mode connection per worker per client session
// and matches replies FIFO, so the worker-side wire needs nothing beyond
// what PR 4 shipped. Client-side `mode unordered` is honored by the router
// itself (replies stream in cluster-wide completion order with `id=<n> `
// prefixes); worker wires stay ordered either way.
//
// Operator contract: every worker must run with the same default backend /
// batch / dilation / depth_multiplier flags as the router (the router
// forwards raw request lines, and a worker with different defaults would
// resolve them differently). simulation_router --spawn passes its own
// defaults down, making the contract automatic; --worker attach mode
// documents it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "service/hash_ring.hpp"
#include "service/protocol.hpp"

namespace edea::service {

class Stream;

/// One worker server. `id` is the *stable* ring name (shard0..shardN-1 for
/// spawned workers, the host:port string for attached ones) - ring
/// placement, and therefore which persisted shard cache owns which keys,
/// follows the id, not the ephemeral address.
struct WorkerEndpoint {
  std::string id;
  std::string host;
  std::uint16_t port = 0;
};

/// Configuration of a ClusterRouter.
struct RouterOptions {
  /// Worker membership at startup. At least one; ids must be unique.
  std::vector<WorkerEndpoint> workers;

  /// Virtual nodes per worker on the hash ring (--replicas).
  int replicas = HashRing::kDefaultReplicas;

  /// Request-parse defaults, mirroring SessionOptions: what `run` lines
  /// resolve to when they carry no backend= / batch= / dilation= /
  /// depth_multiplier= key. Must match the workers' flags (see the
  /// operator contract above).
  std::string backend = std::string(core::kDefaultBackendId);
  int batch = 1;
  int dilation = 1;
  int depth_multiplier = 1;

  /// Whether client `mode unordered` requests are honored (--ordered
  /// pins ordered, exactly like the server flag).
  bool allow_unordered = true;

  /// Forwarding attempts per request (initial send + re-sends after
  /// worker death or busy replies) before the router gives up and
  /// answers an error / busy line itself.
  int max_attempts = 5;

  /// Backoff base for failover re-sends, and the retry_ms the router's
  /// own give-up busy lines advertise. Busy retries use the worker's
  /// retry_ms hint as the base instead.
  int retry_base_ms = 25;

  /// connect_socket budget per worker connection attempt.
  int connect_timeout_ms = 5000;

  /// Seed for the jittered backoff schedule (deterministic tests).
  std::uint64_t backoff_seed = 0x726f757465726267ull;
};

/// Counters of one routed client session (ClusterRouter::serve call).
struct RouterSessionStats {
  std::uint64_t requests = 0;        ///< answered lines (ids consumed)
  std::uint64_t runs = 0;            ///< `run` lines forwarded
  std::uint64_t protocol_errors = 0;
  std::uint64_t frames = 0;          ///< well-formed batch frames opened
  std::uint64_t responses_written = 0;
  std::uint64_t forwarded = 0;       ///< lines sent to workers, incl. re-sends
  std::uint64_t retries = 0;         ///< re-sends (busy + failover)
  std::uint64_t busy_replies = 0;    ///< busy lines received from workers
  std::uint64_t failovers = 0;       ///< worker deaths observed
};

/// The ring key of one parsed request: FNV-1a over every cache-key
/// dimension the dispatch layer's own Key hashes. Requests that are the
/// same cache entry are the same ring key, so shard-local hit/miss
/// behavior reproduces the single-process cache exactly. (The network is
/// keyed by name@seed rather than weight fingerprint - materializing
/// weights just to route would defeat the point; name+seed determines the
/// fingerprint, so the partition is the same.)
[[nodiscard]] std::uint64_t route_key(const Request& request);

/// A consistent-hash router over worker simulation servers. Construct
/// once, then serve() each client connection (thread-safe; worker
/// liveness is shared across sessions - a death observed by one session
/// reroutes every session).
class ClusterRouter {
 public:
  explicit ClusterRouter(RouterOptions options);

  /// Serves one client session over `stream` until EOF, routing its
  /// requests across the live workers. Mirrors Session::serve.
  RouterSessionStats serve(Stream& stream);

  /// Ids of workers still on the ring, sorted.
  [[nodiscard]] std::vector<std::string> live_workers() const;

  [[nodiscard]] const RouterOptions& options() const { return options_; }

 private:
  friend class RouterSession;

  /// The live owner of `key`, or nullopt when every worker is dead.
  [[nodiscard]] std::optional<WorkerEndpoint> owner_of(
      std::uint64_t key) const;

  /// Removes a worker from the ring. Returns false when it was already
  /// dead (concurrent observers of one death race here; only the first
  /// counts).
  bool mark_dead(const std::string& id);

  RouterOptions options_;
  mutable std::mutex membership_mutex_;
  HashRing ring_;                                ///< live workers only
  std::map<std::string, WorkerEndpoint> endpoints_;  ///< all configured
};

/// Merges per-shard persisted cache files into `out_path` via the
/// existing merge-on-resave path: each shard file is loaded into one
/// service (load_cache keeps already-resident keys, so the first file
/// wins a key collision - collisions are bit-identical by construction
/// when shards agree on the simulation), then saved as a single
/// deterministic sorted file. Missing shard files are skipped (a worker
/// that served no traffic may never have written one). Returns the
/// number of entries in the merged file.
std::size_t merge_cache_files(const std::vector<std::string>& shard_paths,
                              const std::string& out_path);

}  // namespace edea::service
