// transport.hpp - the transport layer of the service tier.
//
// The service tier is three layers (see docs/ARCHITECTURE.md):
//
//   transport (this file)  ->  session (session.hpp)  ->  dispatch
//   byte streams, accept       line framing, request      SimulationService
//   loop, connection           ids, ordered replies       + result cache
//   lifetime
//
// A Transport produces connections; each connection is a Stream - one
// bidirectional, line-oriented byte channel. The transport knows nothing
// about the protocol: it hands every connection to a handler (normally
// Session::serve) and manages only lifetime and concurrency.
//
// Two implementations:
//   - StdioTransport: exactly one "connection" over an (istream, ostream)
//     pair - the scripted batch mode the stdin server always had, and the
//     in-process reference path tests compare the socket path against.
//   - SocketTransport: a POSIX TCP server. One session per accepted
//     connection, each served on its own dedicated thread - session
//     threads are I/O-bound and *block* on simulation futures, so they
//     must never run as util::ThreadPool tasks (a pool full of blocked
//     waiters cannot simulate anything); the simulations they trigger are
//     what runs on the pool, via SimulationService.
//
// Threading contract: Transport::serve blocks until the transport is
// exhausted (stdio EOF; socket: max_sessions served or shutdown() called)
// and joins every session thread before returning, so a handler never
// outlives its transport. shutdown() is safe to call from any thread.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace edea::service {

/// One bidirectional line-oriented byte channel (a client connection).
/// Implementations are used by exactly one session: a single reader
/// thread and a single writer thread (never two of either), which is the
/// session layer's split - so read_line and write_line must be safe to
/// call concurrently with *each other*, but not with themselves.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Reads the next line (without its '\n'). Returns false on EOF or a
  /// broken connection; never throws.
  [[nodiscard]] virtual bool read_line(std::string& line) = 0;

  /// Writes one line (appends '\n') and flushes it to the peer. Returns
  /// false on a broken connection; never throws.
  [[nodiscard]] virtual bool write_line(const std::string& line) = 0;

  /// Writes several lines as one flush ("corked"): implementations
  /// coalesce the batch into a single transport write where they can
  /// (one send(2) on a socket, one ostream flush on stdio), which is how
  /// a drained batch frame costs a handful of packets instead of one
  /// per reply. Equivalent to write_line per element otherwise. Returns
  /// false on a broken connection (the batch may then be partially
  /// delivered); never throws. Same concurrency contract as write_line.
  [[nodiscard]] virtual bool write_lines(
      const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
      if (!write_line(line)) return false;
    }
    return true;
  }

  /// Signals that no more lines will be written in the client->server
  /// direction (TCP half-close). Default: no-op - streams over process
  /// stdio signal EOF by closing the input instead.
  virtual void close_write() {}
};

/// Stream over an (istream, ostream) pair - process stdio, string streams
/// in tests. Writes flush per line so an interactive peer sees replies.
class StdioStream : public Stream {
 public:
  StdioStream(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  [[nodiscard]] bool read_line(std::string& line) override;
  [[nodiscard]] bool write_line(const std::string& line) override;
  [[nodiscard]] bool write_lines(
      const std::vector<std::string>& lines) override;

 private:
  std::istream& in_;
  std::ostream& out_;
  std::mutex write_mutex_;  ///< ostreams are not atomic per call
};

/// A source of connections. serve() runs the accept loop, invoking
/// `handler` once per connection, and returns when the transport is
/// exhausted with every handler finished.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void serve(const std::function<void(Stream&)>& handler) = 0;
};

/// The degenerate single-connection transport: one session over stdio.
class StdioTransport : public Transport {
 public:
  StdioTransport(std::istream& in, std::ostream& out) : in_(in), out_(out) {}
  void serve(const std::function<void(Stream&)>& handler) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

struct SocketTransportOptions {
  /// TCP port to listen on; 0 asks the OS for an ephemeral port (read it
  /// back with port() - how tests avoid collisions).
  std::uint16_t port = 0;
  /// Serve exactly this many connections, then stop accepting and return
  /// from serve(). 0 = unlimited (until shutdown()).
  std::size_t max_sessions = 0;
  /// listen(2) backlog.
  int backlog = 16;
};

/// POSIX TCP server transport. Binds 127.0.0.1 (the service speaks a
/// trusting text protocol; exposure beyond loopback is a deployment
/// decision that belongs in front of it, not here). Each accepted
/// connection is served by `handler` on a dedicated thread; concurrent
/// sessions share the SimulationService (and so its cache) by
/// construction, because the handler closes over it.
class SocketTransport : public Transport {
 public:
  /// Binds and listens immediately; throws ResourceError if the socket
  /// cannot be created, bound, or listened on (e.g. port in use).
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// The port actually bound - equal to options.port unless that was 0.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accept loop: blocks until max_sessions connections have been served
  /// or shutdown() is called, then joins every session thread.
  void serve(const std::function<void(Stream&)>& handler) override;

  /// Stops accepting new connections; serve() returns once the sessions
  /// already running have finished. Callable from any thread, idempotent.
  void shutdown() noexcept;

 private:
  SocketTransportOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Client side: connects a Stream to a SocketTransport (or any TCP line
/// server) at host:port. `host` is a numeric IPv4 address or "localhost".
/// Retries ECONNREFUSED for up to `retry_ms` milliseconds - the peer may
/// still be binding (the CI loopback leg starts server and client
/// concurrently). Throws ResourceError when the connection cannot be
/// established.
[[nodiscard]] std::unique_ptr<Stream> connect_socket(const std::string& host,
                                                     std::uint16_t port,
                                                     int retry_ms = 0);

}  // namespace edea::service
