// server_cli.hpp - command line of the simulation server example, as a
// library component so the flag grammar and the --help text are unit
// testable (tests/server_cli_test.cpp asserts every documented flag
// appears in the help output) instead of living untestably in main().
#pragma once

#include <cstdint>
#include <string>

#include "core/backend.hpp"
#include "service/simulation_service.hpp"

namespace edea::service {

/// Parsed server command line. `error` empty means the parse succeeded.
struct ServerConfig {
  bool help = false;    ///< --help: print usage, exit 0
  bool verify = false;  ///< --verify: stdio mode only, serial cross-check
  bool listen = false;  ///< --listen given: TCP socket mode
  std::uint16_t port = 0;        ///< --listen PORT (0 = ephemeral)
  std::size_t max_sessions = 0;  ///< --max-sessions N (0 = unlimited)
  std::string cache_file;        ///< --cache-file PATH ("" = no persistence)
  ServiceOptions service;        ///< --workers / --cache / --tile-parallelism
  /// --backend ID: default backend for requests without a backend= key.
  /// Validated against the registry at parse time (default "edea").
  std::string backend = std::string(core::kDefaultBackendId);
  /// --batch N: default images-per-run for requests without a batch= key.
  /// Validated >= 1 at parse time (default 1).
  int batch = 1;
  /// --dilation N / --depth-multiplier N: default workload transforms for
  /// requests without the matching key. Validated >= 1 at parse time
  /// (default 1).
  int dilation = 1;
  int depth_multiplier = 1;
  /// --ordered: refuse `mode unordered` switches, locking every session
  /// to the byte-exact ordered reply protocol (the verified reference).
  bool ordered = false;
  /// --busy-retry-ms N: the retry hint busy replies advertise. Validated
  /// >= 1 at parse time; only meaningful with --max-queue (default 25).
  int busy_retry_ms = 25;

  std::string error;  ///< non-empty: bad usage, message says why
};

/// Parses argv (past argv[0]). Never throws; any problem - unknown flag,
/// missing or malformed value, contradictory flags (--verify with
/// --listen, --max-sessions without --listen) - comes back in `error`.
[[nodiscard]] ServerConfig parse_server_args(int argc,
                                             const char* const* argv);

/// The full usage/help text: every flag with its value shape and a
/// one-line description. This is the single source of truth the
/// --help satellite test pins each documented option against.
[[nodiscard]] std::string server_usage();

}  // namespace edea::service
