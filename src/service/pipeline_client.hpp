// pipeline_client.hpp - client-side driver for the pipelined wire
// protocol (service/protocol.hpp "Pipelining").
//
// run_pipelined keeps up to `window` requests in flight on one Stream:
// requests go out in batch frames (`batch-begin N` .. `batch-end`) so the
// server corks the replies, a reader thread matches replies back to
// requests, and `busy id=<n> retry_ms=<m>` rejections are retried with
// jittered exponential backoff until they complete. Responses come back
// in *logical request order* with any `id=<n> ` framing prefix stripped,
// so a caller can byte-compare them against the serial stdio reference
// regardless of the wire mode - that is exactly what simulation_client
// --pipeline --verify does.
//
// Two wire modes:
//   - unordered (default): the driver negotiates `mode unordered` first,
//     the server streams each reply as its simulation finishes, and the
//     reader reorders by id. Out-of-order completion is what lets a slow
//     request stop blocking the replies behind it.
//   - ordered (options.ordered, or a server running --ordered that
//     refuses the switch): replies arrive in request-id order and match
//     FIFO. Reply bytes are identical to the pre-pipelining protocol -
//     the verified reference mode.
//
// run_serial is the one-line-per-RTT baseline the saturation benchmark
// compares against: write one line, wait for its reply, repeat (still
// absorbing busy replies). Same result shape, so the two are drop-in
// interchangeable.
//
// Threading: run_pipelined owns its reader thread; the calling thread
// writes. That matches the Stream contract (one concurrent reader plus
// one writer). Neither function throws on connection failure - a broken
// stream comes back as PipelineReport::complete == false.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edea::service {

class Stream;

struct PipelineOptions {
  /// Requests kept in flight at once. Clamped nowhere - callers validate;
  /// must be in [1, kMaxFrameLines] (a burst never exceeds one frame).
  std::size_t window = 32;

  /// Skip the `mode unordered` negotiation and run the byte-exact ordered
  /// reference protocol (replies in request order, no id prefixes).
  bool ordered = false;

  /// Busy retries per request before giving up; a request that exhausts
  /// them keeps the final busy line as its response (callers can grep for
  /// it). The server's retry_ms hint seeds the backoff.
  int max_attempts = 64;

  /// Seed for the backoff jitter - deterministic by default so test runs
  /// are reproducible; load generators vary it per client.
  std::uint64_t backoff_seed = 0x9E3779B97F4A7C15ull;
};

/// What one run did. responses[i] answers requests[i]; busy lines that
/// were successfully retried are absorbed and never appear. Blank and
/// comment lines - which the server ignores without replying - are never
/// sent and keep an empty response slot. Request streams must not carry
/// their own frame-control or `mode` lines (the driver manages both);
/// that throws PreconditionError up front.
struct PipelineReport {
  std::vector<std::string> responses;
  std::uint64_t busy_replies = 0;  ///< busy lines seen (each one retried)
  std::uint64_t frames_sent = 0;   ///< batch frames written
  bool unordered = false;          ///< mode actually in effect on the wire
  bool complete = false;           ///< every request got a final response
  std::string error;               ///< non-empty when !complete
};

/// Replays `requests` over `stream` with up to options.window in flight.
[[nodiscard]] PipelineReport run_pipelined(Stream& stream,
                                           const std::vector<std::string>& requests,
                                           const PipelineOptions& options = {});

/// The synchronous baseline: one request on the wire at a time.
/// options.window and options.ordered are ignored (serial is ordered by
/// construction); busy handling matches run_pipelined.
[[nodiscard]] PipelineReport run_serial(Stream& stream,
                                        const std::vector<std::string>& requests,
                                        const PipelineOptions& options = {});

}  // namespace edea::service
