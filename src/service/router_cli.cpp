#include "service/router_cli.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace edea::service {

namespace {

/// Most workers one --spawn may launch. Far above any sane shard count on
/// one machine; a larger N is almost certainly a typo'd port number.
constexpr int kMaxSpawn = 64;

/// Upper bound for --replicas: past this the ring build cost buys nothing
/// (balance improves as ~1/sqrt(replicas)).
constexpr int kMaxReplicas = 65536;

/// Same digit-first strict grammar as server_cli's parse_count.
bool parse_count(const std::string& text, std::size_t max, std::size_t* out) {
  if (text.empty() || text.front() < '0' || text.front() > '9') return false;
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(text, &consumed);
    if (consumed != text.size() || value > max) return false;
    *out = static_cast<std::size_t>(value);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Strict HOST:PORT parse. The host must be non-empty (a numeric IPv4
/// address or 'localhost' - connect_socket's vocabulary), the port a
/// digit-first integer in [1, 65535]: port 0 means "ephemeral" to a
/// listener and nothing to a connector.
bool parse_endpoint(const std::string& text, WorkerEndpoint* out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  std::size_t port = 0;
  if (!parse_count(text.substr(colon + 1), 65535, &port) || port == 0) {
    return false;
  }
  out->id = text;
  out->host = text.substr(0, colon);
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

}  // namespace

std::string router_usage() {
  return
      "usage: simulation_router --spawn N [options] < requests.txt\n"
      "       simulation_router --worker HOST:PORT [--worker ...] [options]\n"
      "       simulation_router --listen PORT (--spawn N | --worker ...)\n"
      "\n"
      "Routes the EDEA simulation line protocol across worker\n"
      "simulation_server processes by consistent-hashing each request's\n"
      "cache key, merging replies so the routed wire is byte-identical to\n"
      "a single server. Worker death reroutes the ring and retries\n"
      "in-flight requests on the survivors.\n"
      "\n"
      "options:\n"
      "  --help                 print this help and exit\n"
      "  --spawn N              fork N worker servers on ephemeral ports\n"
      "                         (ring ids shard0..shardN-1; drained and\n"
      "                         reaped on shutdown; 1-" +
      std::to_string(kMaxSpawn) +
      ")\n"
      "  --worker HOST:PORT     attach to a running worker server\n"
      "                         (repeatable; the string is the stable ring\n"
      "                         id, so keep addresses fixed across restarts\n"
      "                         to keep per-shard caches routable). The\n"
      "                         workers must run the same --backend/--batch/\n"
      "                         --dilation/--depth-multiplier defaults as\n"
      "                         the router\n"
      "  --server-bin PATH      worker binary for --spawn (default: the\n"
      "                         example_simulation_server next to this\n"
      "                         binary)\n"
      "  --cache-file BASE      spawn mode: worker i persists its shard\n"
      "                         cache to BASE.shard<i>; on shutdown the\n"
      "                         shards are merged into BASE via the\n"
      "                         merge-on-resave path\n"
      "  --replicas N           virtual nodes per worker on the hash ring\n"
      "                         (1-" +
      std::to_string(kMaxReplicas) +
      "; default " + std::to_string(HashRing::kDefaultReplicas) +
      ")\n"
      "  --retry-attempts N     forwarding attempts per request across\n"
      "                         busy replies and worker deaths before the\n"
      "                         router answers an error/busy line itself\n"
      "                         (>= 1; default 5)\n"
      "  --listen PORT          serve TCP on 127.0.0.1:PORT instead of\n"
      "                         stdio (0 = ephemeral; the bound port is\n"
      "                         printed to stderr)\n"
      "  --max-sessions N       socket mode: exit after serving N\n"
      "                         connections (0 = unlimited; default 0)\n"
      "  --backend ID           default accelerator backend for requests\n"
      "                         that carry no backend= key (mirrored to\n"
      "                         spawned workers; default edea)\n"
      "  --batch N              default images-per-run (mirrored to\n"
      "                         spawned workers; >= 1; default 1)\n"
      "  --dilation N           default DWC dilation (mirrored to spawned\n"
      "                         workers; >= 1; default 1)\n"
      "  --depth-multiplier N   default extra depthwise multiplier\n"
      "                         (mirrored to spawned workers; >= 1;\n"
      "                         default 1)\n"
      "  --ordered              refuse `mode unordered` switches: every\n"
      "                         session keeps the byte-exact ordered reply\n"
      "                         protocol (the verified reference mode)\n";
}

RouterCliConfig parse_router_args(int argc, const char* const* argv) {
  RouterCliConfig config;
  bool max_sessions_given = false;

  const auto value_of = [&](int& i, const std::string& flag,
                            std::string* out) {
    if (i + 1 >= argc) {
      config.error = flag + " needs a value";
      return false;
    }
    *out = argv[++i];
    return true;
  };

  for (int i = 0; i < argc && config.error.empty(); ++i) {
    const std::string arg = argv[i];
    std::string value;
    std::size_t count = 0;
    if (arg == "--help") {
      config.help = true;
    } else if (arg == "--worker") {
      if (!value_of(i, arg, &value)) break;
      WorkerEndpoint worker;
      if (!parse_endpoint(value, &worker)) {
        config.error = "--worker needs HOST:PORT with a port in [1, 65535], "
                       "got '" +
                       value + "'";
        break;
      }
      const bool duplicate =
          std::any_of(config.workers.begin(), config.workers.end(),
                      [&](const WorkerEndpoint& w) { return w.id == worker.id; });
      if (duplicate) {
        config.error = "--worker '" + value + "' given twice";
        break;
      }
      config.workers.push_back(std::move(worker));
    } else if (arg == "--spawn") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, static_cast<std::size_t>(kMaxSpawn), &count) ||
          count < 1) {
        config.error = "--spawn needs a worker count in [1, " +
                       std::to_string(kMaxSpawn) + "], got '" + value + "'";
        break;
      }
      config.spawn = static_cast<int>(count);
    } else if (arg == "--server-bin") {
      if (!value_of(i, arg, &value)) break;
      if (value.empty()) {
        config.error = "--server-bin needs a non-empty path";
        break;
      }
      config.server_bin = value;
    } else if (arg == "--cache-file") {
      if (!value_of(i, arg, &value)) break;
      if (value.empty()) {
        config.error = "--cache-file needs a non-empty path";
        break;
      }
      config.cache_file = value;
    } else if (arg == "--replicas") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, static_cast<std::size_t>(kMaxReplicas),
                       &count) ||
          count < 1) {
        config.error = "--replicas needs a count in [1, " +
                       std::to_string(kMaxReplicas) + "], got '" + value + "'";
        break;
      }
      config.replicas = static_cast<int>(count);
    } else if (arg == "--retry-attempts") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error =
            "--retry-attempts needs a positive count, got '" + value + "'";
        break;
      }
      config.max_attempts = static_cast<int>(count);
    } else if (arg == "--listen") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, 65535, &count)) {
        config.error = "--listen needs a port in [0, 65535], got '" + value +
                       "'";
        break;
      }
      config.listen = true;
      config.port = static_cast<std::uint16_t>(count);
    } else if (arg == "--max-sessions") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, std::numeric_limits<std::size_t>::max(),
                       &count)) {
        config.error = "--max-sessions needs a non-negative count, got '" +
                       value + "'";
        break;
      }
      config.max_sessions = count;
      max_sessions_given = true;
    } else if (arg == "--backend") {
      if (!value_of(i, arg, &value)) break;
      if (!core::backend_known(value)) {
        config.error = "--backend: unknown backend '" + value + "' (known: " +
                       core::known_backends_string() + ")";
        break;
      }
      config.backend = value;
    } else if (arg == "--batch") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error = "--batch needs a positive count, got '" + value + "'";
        break;
      }
      config.batch = static_cast<int>(count);
    } else if (arg == "--dilation") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error =
            "--dilation needs a positive count, got '" + value + "'";
        break;
      }
      config.dilation = static_cast<int>(count);
    } else if (arg == "--depth-multiplier") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error =
            "--depth-multiplier needs a positive count, got '" + value + "'";
        break;
      }
      config.depth_multiplier = static_cast<int>(count);
    } else if (arg == "--ordered") {
      config.ordered = true;
    } else {
      config.error = "unknown option '" + arg + "'";
    }
  }
  if (!config.error.empty() || config.help) return config;

  if (config.spawn > 0 && !config.workers.empty()) {
    // Two membership sources would make ring ids ambiguous (shard<i> vs
    // host:port) - exactly the instability stable ids exist to prevent.
    config.error = "--spawn and --worker are mutually exclusive";
  } else if (config.spawn == 0 && config.workers.empty()) {
    config.error = "need workers: --spawn N or at least one --worker "
                   "HOST:PORT";
  } else if (!config.server_bin.empty() && config.spawn == 0) {
    config.error = "--server-bin only applies with --spawn";
  } else if (!config.cache_file.empty() && config.spawn == 0) {
    // Attached workers own their own --cache-file flags; the router can
    // neither name their shard files nor merge what it cannot drain.
    config.error = "--cache-file only applies with --spawn";
  } else if (max_sessions_given && !config.listen) {
    config.error = "--max-sessions only applies with --listen";
  }
  return config;
}

}  // namespace edea::service
