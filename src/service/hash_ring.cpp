#include "service/hash_ring.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace edea::service {

namespace {

/// 64-bit avalanche finalizer (the murmur3 fmix64 constants). FNV-1a is a
/// fine fingerprint but a poor point-placement hash: its multiply-only
/// mixing barely diffuses short inputs like "shard3"+replica, which
/// empirically clusters virtual nodes into arcs and skews ownership by
/// several x. One finalizer pass restores uniform placement; applied to
/// lookup keys too, so both sides of the binary search live in the same
/// well-mixed space.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// The ring point of one (node, replica) pair. Hashing the replica index
/// as a fixed-width integer (not a decimal suffix) keeps "shard1"+replica
/// 12 and "shard11"+replica 2 from colliding by concatenation.
std::uint64_t ring_point(const std::string& id, int replica) {
  return mix64(util::Fnv1a64()
                   .str(id)
                   .pod(static_cast<std::uint64_t>(replica))
                   .digest());
}

}  // namespace

HashRing::HashRing(int replicas) : replicas_(replicas) {
  EDEA_REQUIRE(replicas >= 1,
               "hash ring needs at least 1 replica per node, got " +
                   std::to_string(replicas));
}

void HashRing::add_node(const std::string& id) {
  EDEA_REQUIRE(!id.empty(), "hash ring node id must not be empty");
  EDEA_REQUIRE(!contains(id), "hash ring node '" + id + "' already present");
  nodes_.insert(std::lower_bound(nodes_.begin(), nodes_.end(), id), id);
  points_.reserve(points_.size() + static_cast<std::size_t>(replicas_));
  for (int replica = 0; replica < replicas_; ++replica) {
    points_.push_back(Point{ring_point(id, replica), id});
  }
  // Re-sorting the whole vector on every membership change is O(P log P)
  // for a few hundred points - membership changes are rare (startup,
  // failover), lookups are the hot path and stay a binary search.
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.where != b.where ? a.where < b.where : a.node < b.node;
            });
}

bool HashRing::remove_node(const std::string& id) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), id);
  if (it == nodes_.end() || *it != id) return false;
  nodes_.erase(it);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const Point& p) { return p.node == id; }),
                points_.end());
  return true;
}

bool HashRing::contains(const std::string& id) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), id);
}

const std::string& HashRing::owner(std::uint64_t key) const {
  EDEA_REQUIRE(!points_.empty(), "hash ring is empty - no owner for any key");
  const std::uint64_t mixed = mix64(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), mixed,
      [](const Point& p, std::uint64_t k) { return p.where < k; });
  return (it == points_.end() ? points_.front() : *it).node;
}

}  // namespace edea::service
