// hash_ring.hpp - consistent hashing over the simulation cache keyspace.
//
// The cluster router (service/router.hpp) shards requests across worker
// server processes by cache key: every request hashes to a point on a
// 64-bit ring, and the worker owning the first virtual node at or after
// that point (wrapping) serves it. Consistent hashing gives the two
// properties the cluster needs:
//
//   balance     each worker contributes `replicas` virtual nodes at
//               FNV-1a-scattered points, so shard loads even out as the
//               replica count grows (tests/hash_ring_test.cpp pins the
//               spread over the differential-harness key corpus);
//   stability   adding or removing one worker only remaps the keys that
//               worker owned (~1/N of the space) - every other key keeps
//               its owner, which is what makes failover cheap (only the
//               dead shard's keys move) and per-shard persisted caches
//               mostly valid across membership changes.
//
// Node ids are caller-chosen strings and should be *stable* names, not
// ephemeral addresses: the router names spawned workers shard0..shardN-1
// so a restarted cluster (fresh ephemeral ports) routes every key to the
// worker holding the same persisted shard cache.
//
// The ring itself is deterministic: the same (ids, replicas) always builds
// the same ring regardless of insertion order, because points are sorted
// by (hash, id) with ties broken lexicographically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edea::service {

/// A consistent-hash ring of named nodes with virtual replicas.
/// Not thread-safe; the router guards its ring with the membership lock
/// it already holds for liveness bookkeeping.
class HashRing {
 public:
  /// Default virtual nodes per physical node. 64 keeps the max/min shard
  /// load within ~1.5x on realistic key corpora (see hash_ring_test).
  static constexpr int kDefaultReplicas = 64;

  explicit HashRing(int replicas = kDefaultReplicas);

  /// Adds a node. Empty or duplicate ids are precondition errors - the
  /// caller owns membership and a double-add means its bookkeeping and
  /// the ring disagree.
  void add_node(const std::string& id);

  /// Removes a node and its virtual points. Returns false when the id is
  /// not a member (removing a node twice during failover races is normal,
  /// so absence is not an error).
  bool remove_node(const std::string& id);

  [[nodiscard]] bool contains(const std::string& id) const;
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int replicas() const { return replicas_; }
  /// Member ids in sorted order (deterministic for stats fan-out/merge).
  [[nodiscard]] const std::vector<std::string>& nodes() const {
    return nodes_;
  }

  /// The node owning `key`: the first virtual point at or after the key,
  /// wrapping past the top of the ring. Requires a non-empty ring. The
  /// reference is invalidated by add_node/remove_node.
  [[nodiscard]] const std::string& owner(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t where = 0;
    std::string node;
  };

  int replicas_;
  std::vector<std::string> nodes_;  ///< members, sorted
  std::vector<Point> points_;      ///< virtual nodes, sorted by (where, node)
};

}  // namespace edea::service
