#include "service/protocol.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

namespace edea::service {

namespace {

/// Splits on runs of whitespace.
std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(std::move(token));
  return tokens;
}

ParsedLine malformed(std::string message) {
  ParsedLine p;
  p.kind = ParsedLine::Kind::kError;
  p.error = std::move(message);
  return p;
}

bool parse_double(const std::string& text, double* out) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    // Reject "nan"/"inf": a non-finite value in a cache key is poison
    // (NaN is unequal to itself) and means nothing physically anyway.
    if (consumed != text.size() || !std::isfinite(value)) return false;
    *out = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Applies one key=value override to a request. Returns an error message,
/// empty on success.
std::string apply_override(Request& request, const std::string& key,
                           const std::string& value) {
  if (key == "seed") {
    if (!parse_strict_u64(value, &request.seed)) {
      return "bad seed '" + value + "'";
    }
    return "";
  }
  if (key == "batch") {
    if (!parse_strict_count(value, &request.batch)) {
      return "bad batch '" + value + "' (want a plain integer >= 1)";
    }
    return "";
  }
  if (key == "dilation") {
    if (!parse_strict_count(value, &request.dilation)) {
      return "bad dilation '" + value + "' (want a plain integer >= 1)";
    }
    return "";
  }
  if (key == "depth_multiplier") {
    if (!parse_strict_count(value, &request.depth_multiplier)) {
      return "bad depth_multiplier '" + value +
             "' (want a plain integer >= 1)";
    }
    return "";
  }
  if (key == "backend") {
    if (!core::backend_known(value)) {
      return "unknown backend '" + value +
             "' (known: " + core::known_backends_string() + ")";
    }
    request.backend = value;
    return "";
  }
  if (key == "clock_ghz") {
    if (!parse_double(value, &request.config.clock_ghz)) {
      return "bad clock_ghz '" + value + "'";
    }
    return "";
  }
  int* field = nullptr;
  core::EdeaConfig& c = request.config;
  if (key == "tn") field = &c.tn;
  else if (key == "tm") field = &c.tm;
  else if (key == "td") field = &c.td;
  else if (key == "tk") field = &c.tk;
  else if (key == "kernel") field = &c.kernel;
  else if (key == "init_cycles") field = &c.init_cycles;
  else if (key == "max_tile_out") field = &c.max_tile_out;
  if (field == nullptr) return "unknown key '" + key + "'";
  // Every integer key shares the strict grammar: "+4", " 4", "4x", and
  // out-of-range values are all protocol errors naming the value, not
  // config-validation surprises downstream. (Config overrides allow 0 -
  // init_cycles=0 is a valid configuration; EdeaConfig::validate owns the
  // per-field semantic ranges.)
  if (!parse_strict_int(value, field)) {
    return "bad value '" + value + "' for key '" + key + "'";
  }
  return "";
}

/// Strict digit run starting at `pos`; advances pos past it. Returns
/// false when no digit is there or the value overflows uint64.
bool scan_u64(const std::string& text, std::size_t& pos, std::uint64_t* out) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return false;
  std::uint64_t value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[pos] - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
    ++pos;
  }
  *out = value;
  return true;
}

/// Matches ` <key>=` at `pos` and scans the digit run after it.
bool scan_field(const std::string& text, std::size_t& pos, const char* key,
                std::uint64_t* out) {
  const std::string want = std::string(" ") + key + "=";
  if (text.compare(pos, want.size(), want) != 0) return false;
  pos += want.size();
  return scan_u64(text, pos, out);
}

std::string format_gops(double gops) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << gops;
  return os.str();
}

std::string format_hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

}  // namespace

// One digit-accumulation loop with an explicit pre-multiply range check:
// overflow is detected arithmetically (value > (max - digit) / 10 would
// overflow), never via std::stoi-family exception behavior, and the
// digit-only scan rejects whitespace, signs, and trailing junk in one
// pass.
bool parse_strict_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool parse_strict_int(const std::string& text, int* out) {
  std::uint64_t value = 0;
  if (!parse_strict_u64(text, &value)) return false;
  if (value > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
    return false;  // out of int range
  }
  *out = static_cast<int>(value);
  return true;
}

bool parse_strict_count(const std::string& text, int* out) {
  int value = 0;
  if (!parse_strict_int(text, &value) || value < 1) return false;
  *out = value;
  return true;
}

std::string Request::job_name() const {
  return network + "@" + std::to_string(seed);
}

ParsedLine parse_request_line(const std::string& line,
                              const std::string& default_backend,
                              int default_batch, int default_dilation,
                              int default_depth_multiplier) {
  EDEA_REQUIRE(core::backend_known(default_backend),
               "default backend '" + default_backend +
                   "' is not registered (known: " +
                   core::known_backends_string() + ")");
  EDEA_REQUIRE(default_batch >= 1,
               "default batch must be >= 1, got " +
                   std::to_string(default_batch));
  EDEA_REQUIRE(default_dilation >= 1,
               "default dilation must be >= 1, got " +
                   std::to_string(default_dilation));
  EDEA_REQUIRE(default_depth_multiplier >= 1,
               "default depth multiplier must be >= 1, got " +
                   std::to_string(default_depth_multiplier));
  const std::vector<std::string> tokens = tokenize(line);
  ParsedLine parsed;
  parsed.request.backend = default_backend;
  parsed.request.batch = default_batch;
  parsed.request.dilation = default_dilation;
  parsed.request.depth_multiplier = default_depth_multiplier;
  if (tokens.empty() || tokens.front().front() == '#') {
    return parsed;  // kEmpty
  }

  const std::string& verb = tokens.front();
  if (verb == "stats") {
    if (tokens.size() != 1) return malformed("stats takes no arguments");
    parsed.kind = ParsedLine::Kind::kStats;
    return parsed;
  }
  if (verb == "mode") {
    if (tokens.size() != 2) {
      return malformed("mode takes exactly one argument (ordered|unordered)");
    }
    if (tokens[1] != "ordered" && tokens[1] != "unordered") {
      return malformed("bad mode '" + tokens[1] +
                       "' (expected ordered|unordered)");
    }
    parsed.kind = ParsedLine::Kind::kMode;
    parsed.unordered = tokens[1] == "unordered";
    return parsed;
  }
  if (verb == "batch-begin") {
    if (tokens.size() != 2) {
      return malformed("batch-begin takes exactly one argument (line count)");
    }
    int n = 0;
    // The strict count grammar: "0", "+4", " 4", "4x", and overflow all
    // fail here - a frame size is wire data and parses like batch=.
    if (!parse_strict_count(tokens[1], &n)) {
      return malformed("bad batch-begin count '" + tokens[1] +
                       "' (want a plain integer >= 1)");
    }
    if (n > kMaxFrameLines) {
      return malformed("batch-begin count " + tokens[1] + " exceeds the " +
                       std::to_string(kMaxFrameLines) + "-line frame limit");
    }
    parsed.kind = ParsedLine::Kind::kBatchBegin;
    parsed.frame_size = n;
    return parsed;
  }
  if (verb == "batch-end") {
    if (tokens.size() != 1) return malformed("batch-end takes no arguments");
    parsed.kind = ParsedLine::Kind::kBatchEnd;
    return parsed;
  }
  if (verb != "run") {
    return malformed("unknown verb '" + verb +
                     "' (expected run|stats|mode|batch-begin|batch-end|#)");
  }
  if (tokens.size() < 2) {
    return malformed("run needs a network name");
  }

  parsed.kind = ParsedLine::Kind::kRun;
  parsed.request.network = tokens[1];
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      return malformed("expected key=value, got '" + token + "'");
    }
    const std::string err = apply_override(
        parsed.request, token.substr(0, eq), token.substr(eq + 1));
    if (!err.empty()) return malformed(err);
  }
  return parsed;
}

std::string format_outcome_line(const core::SweepOutcome& outcome) {
  const std::string cache = outcome.cache_hit ? "hit" : "miss";
  // Default-valued knobs stay silent: echoing batch/dilation/
  // depth_multiplier only when the request actually set them keeps every
  // pre-existing response byte-stable.
  std::string batch =
      outcome.batch > 1 ? " batch=" + std::to_string(outcome.batch) : "";
  if (outcome.dilation > 1) {
    batch += " dilation=" + std::to_string(outcome.dilation);
  }
  if (outcome.depth_multiplier > 1) {
    batch += " depth_multiplier=" + std::to_string(outcome.depth_multiplier);
  }
  if (!outcome.ok) {
    return "error " + outcome.name + " " + outcome.config.to_string() +
           " backend=" + outcome.backend + batch + " cache=" + cache +
           " msg=" + outcome.error;
  }
  // The captured summary, not a recomputation from `result`: outcomes
  // served from the persisted cache of a restarted service carry *only*
  // the summary, and both kinds must format bit-identically.
  const core::RunSummary& s = outcome.summary;
  return "ok " + outcome.name + " " + outcome.config.to_string() +
         " backend=" + outcome.backend + batch +
         " cycles=" + std::to_string(s.total_cycles) +
         " ops=" + std::to_string(s.total_ops) +
         " gops=" + format_gops(s.average_gops) +
         " layers=" + std::to_string(s.layer_count) +
         " out=" + format_hex64(s.output_hash) + " cache=" + cache;
}

std::string format_stats_line(const CacheStats& stats) {
  std::string line = "stats hits=" + std::to_string(stats.hits) +
                     " misses=" + std::to_string(stats.misses) +
                     " evictions=" + std::to_string(stats.evictions) +
                     " entries=" + std::to_string(stats.entries) +
                     " inflight=" + std::to_string(stats.in_flight);
  // Admission counters appear only when a bounded queue is configured:
  // the same only-when-non-default rule that keeps batch= silent keeps
  // every pre-admission stats line byte-stable.
  if (stats.max_queue > 0) {
    line += " queued=" + std::to_string(stats.queued) +
            " rejected=" + std::to_string(stats.rejected) +
            " peak_queue=" + std::to_string(stats.peak_queue);
  }
  return line;
}

std::string format_busy_line(std::uint64_t id, int retry_ms) {
  return "busy id=" + std::to_string(id) +
         " retry_ms=" + std::to_string(retry_ms);
}

std::string format_unordered_line(std::uint64_t id, const std::string& line) {
  return "id=" + std::to_string(id) + " " + line;
}

bool parse_busy_line(const std::string& line, std::uint64_t* id,
                     int* retry_ms) {
  constexpr const char* kPrefix = "busy id=";
  constexpr const char* kRetry = " retry_ms=";
  if (line.rfind(kPrefix, 0) != 0) return false;
  std::size_t pos = std::string(kPrefix).size();
  std::uint64_t parsed_id = 0;
  if (!scan_u64(line, pos, &parsed_id)) return false;
  if (line.compare(pos, std::string(kRetry).size(), kRetry) != 0) return false;
  pos += std::string(kRetry).size();
  std::uint64_t ms = 0;
  if (!scan_u64(line, pos, &ms) || pos != line.size() ||
      ms > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
    return false;
  }
  *id = parsed_id;
  *retry_ms = static_cast<int>(ms);
  return true;
}

bool parse_unordered_line(const std::string& line, std::uint64_t* id,
                          std::string* rest) {
  if (line.rfind("id=", 0) != 0) return false;
  std::size_t pos = 3;
  std::uint64_t parsed_id = 0;
  if (!scan_u64(line, pos, &parsed_id)) return false;
  if (pos >= line.size() || line[pos] != ' ') return false;
  *id = parsed_id;
  *rest = line.substr(pos + 1);
  return true;
}

bool parse_stats_line(const std::string& line, CacheStats* out) {
  if (line.rfind("stats", 0) != 0) return false;
  std::size_t pos = 5;
  std::uint64_t hits = 0, misses = 0, evictions = 0, entries = 0,
                inflight = 0;
  if (!scan_field(line, pos, "hits", &hits) ||
      !scan_field(line, pos, "misses", &misses) ||
      !scan_field(line, pos, "evictions", &evictions) ||
      !scan_field(line, pos, "entries", &entries) ||
      !scan_field(line, pos, "inflight", &inflight)) {
    return false;
  }
  CacheStats parsed;
  parsed.hits = hits;
  parsed.misses = misses;
  parsed.evictions = evictions;
  parsed.entries = static_cast<std::size_t>(entries);
  parsed.in_flight = inflight;
  if (pos != line.size()) {
    // The admission trio is all-or-nothing on the wire.
    std::uint64_t queued = 0, rejected = 0, peak = 0;
    if (!scan_field(line, pos, "queued", &queued) ||
        !scan_field(line, pos, "rejected", &rejected) ||
        !scan_field(line, pos, "peak_queue", &peak) || pos != line.size()) {
      return false;
    }
    parsed.queued = queued;
    parsed.rejected = rejected;
    parsed.peak_queue = peak;
    parsed.max_queue = 1;  // presence flag - the bound is not wire data
  }
  *out = parsed;
  return true;
}

}  // namespace edea::service
