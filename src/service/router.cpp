#include "service/router.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/sweep_runner.hpp"
#include "service/simulation_service.hpp"
#include "service/transport.hpp"
#include "util/backoff.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"

namespace edea::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Reply-FIFO entry for a fanned-out `stats` line. Request ids start at 1,
/// so 0 is free to mark the one reply per channel that belongs to the
/// stats aggregator instead of a pending request.
constexpr std::uint64_t kStatsMarker = 0;

}  // namespace

std::uint64_t route_key(const Request& request) {
  return util::Fnv1a64()
      .str(request.network)
      .pod(request.seed)
      .pod(request.config.hash())
      .str(request.backend)
      .pod(request.batch)
      .pod(request.dilation)
      .pod(request.depth_multiplier)
      .digest();
}

ClusterRouter::ClusterRouter(RouterOptions options)
    : options_(std::move(options)), ring_(options_.replicas) {
  EDEA_REQUIRE(!options_.workers.empty(),
               "cluster router needs at least one worker");
  EDEA_REQUIRE(core::backend_known(options_.backend),
               "router default backend '" + options_.backend +
                   "' is not registered (known: " +
                   core::known_backends_string() + ")");
  EDEA_REQUIRE(options_.batch >= 1, "router default batch must be >= 1, got " +
                                        std::to_string(options_.batch));
  EDEA_REQUIRE(options_.dilation >= 1,
               "router default dilation must be >= 1, got " +
                   std::to_string(options_.dilation));
  EDEA_REQUIRE(options_.depth_multiplier >= 1,
               "router default depth multiplier must be >= 1, got " +
                   std::to_string(options_.depth_multiplier));
  EDEA_REQUIRE(options_.max_attempts >= 1,
               "router max_attempts must be >= 1, got " +
                   std::to_string(options_.max_attempts));
  EDEA_REQUIRE(options_.retry_base_ms >= 1,
               "router retry_base_ms must be >= 1, got " +
                   std::to_string(options_.retry_base_ms));
  EDEA_REQUIRE(options_.connect_timeout_ms >= 1,
               "router connect_timeout_ms must be >= 1, got " +
                   std::to_string(options_.connect_timeout_ms));
  for (const WorkerEndpoint& worker : options_.workers) {
    // add_node rejects empty and duplicate ids for us.
    ring_.add_node(worker.id);
    endpoints_.emplace(worker.id, worker);
  }
}

std::vector<std::string> ClusterRouter::live_workers() const {
  const std::lock_guard<std::mutex> lock(membership_mutex_);
  return ring_.nodes();
}

std::optional<WorkerEndpoint> ClusterRouter::owner_of(
    std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(membership_mutex_);
  if (ring_.empty()) return std::nullopt;
  return endpoints_.at(ring_.owner(key));
}

bool ClusterRouter::mark_dead(const std::string& id) {
  const std::lock_guard<std::mutex> lock(membership_mutex_);
  return ring_.remove_node(id);
}

/// One routed client session. Mirrors Session::serve's structure - reader
/// (this thread) + corking writer + slot queue - with the dispatch layer
/// replaced by per-worker forwarding channels:
///
///   channel     one ordered-mode connection to one worker, opened lazily
///               on first use, plus a reader thread matching its replies
///               FIFO against the ids sent down it. The id is pushed onto
///               the FIFO and the line written under one per-channel write
///               lock, so FIFO order always equals wire order.
///   pending     every forwarded request until it finalizes: the parsed
///               request (for rerouting after a death), the raw line (what
///               re-sends forward), the reply slot, and the attempt count.
///   retry pump  a timer thread re-sending requests whose worker answered
///               busy or died, after a jittered backoff. A request is
///               re-sent only once its FIFO entry is gone (popped for busy,
///               stolen by the death handler), so it is on at most one
///               worker at a time - the no-duplicates half of the failover
///               invariant; finalize-exactly-once is the no-loss half.
class RouterSession {
 public:
  RouterSession(ClusterRouter& router, Stream& client)
      : router_(router),
        opt_(router.options_),
        client_(client),
        rng_(opt_.backoff_seed) {}

  RouterSessionStats run();

 private:
  /// A reply slot; ordered mode queues it at submit time, unordered at
  /// completion (same discipline as Session). Router slots are always
  /// pre-formed text - worker replies arrive fully formatted.
  struct Slot {
    std::uint64_t id = 0;
    bool ready = false;
    std::string text;
  };

  struct Pending {
    Request request;       ///< for rerouting and give-up error lines
    std::string raw_line;  ///< forwarded verbatim on every attempt
    std::shared_ptr<Slot> slot;
    int attempts = 0;  ///< forwarding attempts consumed (sends + failed
                       ///< connects)
    bool unordered = false;  ///< reply framing at submit time
  };

  struct Channel {
    std::string worker_id;
    std::unique_ptr<Stream> stream;
    std::thread reader;
    /// Serializes {FIFO push + wire write} so FIFO order is wire order.
    std::mutex write_mutex;
    /// Ids awaiting replies, in wire order (guarded by mutex_).
    std::deque<std::uint64_t> fifo;
    bool broken = false;  ///< guarded by mutex_; death handled once
  };

  void push_text(std::uint64_t id, std::string text);
  void finalize_line_locked(std::uint64_t id, std::string payload,
                            bool self_identifying);
  void finalize_error_locked(std::uint64_t id, const std::string& message);
  void schedule_retry_locked(std::uint64_t id, std::int64_t delay_ms);
  void resend(std::uint64_t id);
  bool send_run(Channel* channel, std::uint64_t id);
  void send_stats(Channel* channel);
  Channel* get_or_create_channel(const WorkerEndpoint& worker);
  void channel_reader(Channel* channel);
  /// Consumes one reply line on a channel. Returns false on a FIFO/parse
  /// desync - wire corruption, treated as a worker death.
  bool handle_reply(Channel* channel, const std::string& line);
  void handle_channel_death(Channel* channel);
  void serve_stats(std::uint64_t id, bool unordered);

  ClusterRouter& router_;
  const RouterOptions& opt_;
  Stream& client_;
  RouterSessionStats stats_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;  // writer waits for a ready head
  std::condition_variable done_cv_;   // reader waits for outstanding == 0
  std::condition_variable retry_cv_;  // retry pump waits for due work
  std::condition_variable fan_cv_;    // stats barrier waits for replies
  std::deque<std::shared_ptr<Slot>> queue_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t outstanding_ = 0;
  bool finished_ = false;
  bool stream_broken_ = false;
  bool closing_ = false;     ///< clean shutdown: channel EOFs are not deaths
  bool stop_retry_ = false;  ///< retry pump may exit once retries_ drains
  std::vector<std::pair<Clock::time_point, std::uint64_t>> retries_;
  Rng rng_;  ///< backoff jitter (guarded by mutex_)

  /// The (single, barrier-serialized) in-flight stats fan-out.
  struct Fanout {
    std::size_t awaiting = 0;
    std::vector<std::pair<std::string, CacheStats>> collected;
  } fan_;

  std::mutex channels_mutex_;  ///< serializes channel creation/lookup
  std::map<std::string, std::unique_ptr<Channel>> channels_;
};

void RouterSession::push_text(std::uint64_t id, std::string text) {
  auto slot = std::make_shared<Slot>();
  slot->id = id;
  slot->ready = true;
  slot->text = std::move(text);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(slot));
  }
  queue_cv_.notify_one();
}

void RouterSession::finalize_line_locked(std::uint64_t id, std::string payload,
                                         bool self_identifying) {
  const auto it = pending_.find(id);
  EDEA_ASSERT(it != pending_.end(),
              "router finalized request " + std::to_string(id) + " twice");
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.unordered && !self_identifying) {
    payload = format_unordered_line(id, payload);
  }
  pending.slot->text = std::move(payload);
  pending.slot->ready = true;
  if (pending.unordered) queue_.push_back(pending.slot);
  --outstanding_;
  // Notify while holding the mutex - same condition-variable lifetime
  // reasoning as Session's completion callback.
  queue_cv_.notify_one();
  done_cv_.notify_all();
}

void RouterSession::finalize_error_locked(std::uint64_t id,
                                          const std::string& message) {
  const Request& request = pending_.at(id).request;
  core::SweepOutcome failed;
  failed.name = request.job_name();
  failed.config = request.config;
  failed.backend = request.backend;
  failed.batch = request.batch;
  failed.dilation = request.dilation;
  failed.depth_multiplier = request.depth_multiplier;
  failed.error = message;
  finalize_line_locked(id, format_outcome_line(failed), false);
}

void RouterSession::schedule_retry_locked(std::uint64_t id,
                                          std::int64_t delay_ms) {
  retries_.emplace_back(Clock::now() + std::chrono::milliseconds(delay_ms),
                        id);
  retry_cv_.notify_all();
}

void RouterSession::resend(std::uint64_t id) {
  for (;;) {
    std::uint64_t key = 0;
    int attempts = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = pending_.find(id);
      if (it == pending_.end()) return;  // already finalized
      key = route_key(it->second.request);
      attempts = it->second.attempts;
    }
    if (attempts >= opt_.max_attempts) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.find(id) != pending_.end()) {
        finalize_error_locked(
            id, "cluster: request failed after " + std::to_string(attempts) +
                    " attempts (no reachable worker)");
      }
      return;
    }
    const std::optional<WorkerEndpoint> owner = router_.owner_of(key);
    if (!owner.has_value()) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.find(id) != pending_.end()) {
        finalize_error_locked(id, "cluster: no live workers");
      }
      return;
    }
    Channel* channel = get_or_create_channel(*owner);
    if (channel == nullptr) {
      // Unreachable worker: treat exactly like a death and burn one
      // attempt, so a cluster of black holes converges on the error line
      // instead of looping.
      const bool first_observer = router_.mark_dead(owner->id);
      const std::lock_guard<std::mutex> lock(mutex_);
      if (first_observer) ++stats_.failovers;
      const auto it = pending_.find(id);
      if (it == pending_.end()) return;
      ++it->second.attempts;
      if (it->second.attempts > 1) ++stats_.retries;
      continue;
    }
    if (send_run(channel, id)) return;
    // The channel broke between lookup and send: route again.
  }
}

bool RouterSession::send_run(Channel* channel, std::uint64_t id) {
  const std::lock_guard<std::mutex> write_lock(channel->write_mutex);
  std::string raw;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (channel->broken) return false;
    const auto it = pending_.find(id);
    if (it == pending_.end()) return true;  // finalized while routing
    channel->fifo.push_back(id);
    ++it->second.attempts;
    ++stats_.forwarded;
    if (it->second.attempts > 1) ++stats_.retries;
    raw = it->second.raw_line;
  }
  if (!channel->stream->write_line(raw)) {
    // The death handler steals the FIFO entry just pushed and reschedules
    // (or finalizes) it - accounting is complete either way.
    handle_channel_death(channel);
  }
  return true;
}

void RouterSession::send_stats(Channel* channel) {
  const std::lock_guard<std::mutex> write_lock(channel->write_mutex);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (channel->broken) return;
    channel->fifo.push_back(kStatsMarker);
    ++fan_.awaiting;
  }
  if (!channel->stream->write_line("stats")) handle_channel_death(channel);
}

RouterSession::Channel* RouterSession::get_or_create_channel(
    const WorkerEndpoint& worker) {
  const std::lock_guard<std::mutex> lock(channels_mutex_);
  const auto it = channels_.find(worker.id);
  if (it != channels_.end()) return it->second.get();
  std::unique_ptr<Stream> stream;
  try {
    stream = connect_socket(worker.host, worker.port, opt_.connect_timeout_ms);
  } catch (const std::exception&) {
    return nullptr;
  }
  auto channel = std::make_unique<Channel>();
  channel->worker_id = worker.id;
  channel->stream = std::move(stream);
  Channel* raw = channel.get();
  channels_.emplace(worker.id, std::move(channel));
  raw->reader = std::thread([this, raw] { channel_reader(raw); });
  return raw;
}

bool RouterSession::handle_reply(Channel* channel, const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (channel->fifo.empty()) return false;  // reply with nothing in flight
  const std::uint64_t front = channel->fifo.front();

  if (front == kStatsMarker) {
    CacheStats parsed;
    if (!parse_stats_line(line, &parsed)) return false;
    channel->fifo.pop_front();
    fan_.collected.emplace_back(channel->worker_id, parsed);
    --fan_.awaiting;
    fan_cv_.notify_all();
    return true;
  }

  std::uint64_t worker_wire_id = 0;
  int retry_ms = 0;
  if (parse_busy_line(line, &worker_wire_id, &retry_ms)) {
    // The embedded id is the *worker's* wire id, not ours - FIFO position
    // is the match. The router owns the retry (the client asked us, not
    // the worker); only when attempts run out does the client see a busy
    // line, re-written with its own id.
    channel->fifo.pop_front();
    ++stats_.busy_replies;
    Pending& pending = pending_.at(front);
    if (pending.attempts >= opt_.max_attempts) {
      finalize_line_locked(front, format_busy_line(front, retry_ms), true);
    } else {
      schedule_retry_locked(
          front, jittered_backoff_ms(pending.attempts, retry_ms, rng_));
    }
    return true;
  }

  channel->fifo.pop_front();
  finalize_line_locked(front, line, false);
  return true;
}

void RouterSession::channel_reader(Channel* channel) {
  std::string line;
  while (channel->stream->read_line(line)) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (channel->broken) return;  // death already handled elsewhere
    }
    if (!handle_reply(channel, line)) break;
  }
  handle_channel_death(channel);
}

void RouterSession::handle_channel_death(Channel* channel) {
  std::deque<std::uint64_t> stolen;
  bool was_closing = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (channel->broken) return;  // first observer wins
    channel->broken = true;
    stolen.swap(channel->fifo);
    was_closing = closing_;
  }
  // A clean shutdown EOF (close_write drained the worker) is not a death:
  // the worker stays on the ring for other sessions. Anything still on
  // the FIFO means the connection dropped mid-flight - that *is* a death.
  if (was_closing && stolen.empty()) return;
  router_.mark_dead(channel->worker_id);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.failovers;
  for (const std::uint64_t entry : stolen) {
    if (entry == kStatsMarker) {
      --fan_.awaiting;
      fan_cv_.notify_all();
      continue;
    }
    Pending& pending = pending_.at(entry);
    if (pending.attempts >= opt_.max_attempts) {
      finalize_error_locked(
          entry, "cluster: request failed after " +
                     std::to_string(pending.attempts) + " attempts (worker '" +
                     channel->worker_id + "' died)");
    } else {
      schedule_retry_locked(
          entry,
          jittered_backoff_ms(pending.attempts, opt_.retry_base_ms, rng_));
    }
  }
}

void RouterSession::serve_stats(std::uint64_t id, bool unordered) {
  // Cluster barrier: every preceding request has finalized, so each
  // worker has completed (and replied to) everything this session sent
  // it - their counters are quiescent with respect to this session.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    fan_.awaiting = 0;
    fan_.collected.clear();
  }
  // Fan out to *every* live worker, not just ones this session has
  // routed to: a shard's persisted entries count even when no request
  // of ours has landed on it yet, and the single-process stats line the
  // merge must reproduce counts all of them.
  for (const std::string& worker_id : router_.live_workers()) {
    Channel* channel = get_or_create_channel(router_.endpoints_.at(worker_id));
    if (channel == nullptr) {
      const bool first_observer = router_.mark_dead(worker_id);
      if (first_observer) {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.failovers;
      }
      continue;
    }
    send_stats(channel);
  }
  std::string line;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    fan_cv_.wait(lock, [&] { return fan_.awaiting == 0; });
    // Deterministic merge: sum in sorted worker order. Addition commutes,
    // but the order is part of the contract so future non-commutative
    // fields (or debugging output) stay reproducible.
    std::sort(fan_.collected.begin(), fan_.collected.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    CacheStats merged;
    for (const auto& [worker_id, shard] : fan_.collected) {
      merged.hits += shard.hits;
      merged.misses += shard.misses;
      merged.evictions += shard.evictions;
      merged.entries += shard.entries;
      merged.in_flight += shard.in_flight;
      merged.queued += shard.queued;
      merged.rejected += shard.rejected;
      merged.peak_queue += shard.peak_queue;
      merged.max_queue += shard.max_queue;  // presence flag: any shard
    }
    line = format_stats_line(merged);
  }
  if (unordered) line = format_unordered_line(id, line);
  push_text(id, std::move(line));
}

RouterSessionStats RouterSession::run() {
  std::thread writer([&] {
    std::vector<std::shared_ptr<Slot>> drained;
    std::vector<std::string> batch;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_cv_.wait(lock, [&] {
          return (!queue_.empty() && queue_.front()->ready) ||
                 (finished_ && queue_.empty());
        });
        if (queue_.empty()) return;  // finished, everything written
        // Cork every consecutively ready reply into one send, exactly
        // like Session's writer - a pending head (ordered mode, shard
        // still working) ends the batch.
        while (!queue_.empty() && queue_.front()->ready) {
          drained.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      for (const std::shared_ptr<Slot>& slot : drained) {
        batch.push_back(std::move(slot->text));
      }
      drained.clear();
      bool broken;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        broken = stream_broken_;
      }
      if (!broken) {
        if (client_.write_lines(batch)) {
          stats_.responses_written += batch.size();
        } else {
          const std::lock_guard<std::mutex> lock(mutex_);
          stream_broken_ = true;
        }
      }
      batch.clear();
    }
  });

  std::thread pump([&] {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (retries_.empty()) {
        if (stop_retry_) return;
        retry_cv_.wait(lock);
        continue;
      }
      const auto earliest = std::min_element(
          retries_.begin(), retries_.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      if (Clock::now() >= earliest->first) {
        const std::uint64_t id = earliest->second;
        retries_.erase(earliest);
        lock.unlock();
        resend(id);
        lock.lock();
      } else {
        retry_cv_.wait_until(lock, earliest->first);
      }
    }
  });

  bool unordered = false;
  bool in_frame = false;
  int frame_expected = 0;
  int frame_seen = 0;

  std::string raw;
  while (client_.read_line(raw)) {
    ParsedLine parsed = parse_request_line(raw, opt_.backend, opt_.batch,
                                           opt_.dilation,
                                           opt_.depth_multiplier);
    if (parsed.kind == ParsedLine::Kind::kEmpty) continue;

    // Frame bookkeeping, byte-identical to Session::serve: frames are a
    // client-to-router transport hint and never travel to workers.
    if (in_frame) {
      if (parsed.kind == ParsedLine::Kind::kBatchEnd) {
        if (frame_seen < frame_expected) {
          parsed.kind = ParsedLine::Kind::kError;
          parsed.error = "batch-end after " + std::to_string(frame_seen) +
                         " of " + std::to_string(frame_expected) +
                         " frame lines";
        }
        in_frame = false;
        if (parsed.kind == ParsedLine::Kind::kBatchEnd) continue;
      } else if (frame_seen >= frame_expected) {
        parsed.kind = ParsedLine::Kind::kError;
        parsed.error = "expected batch-end after " +
                       std::to_string(frame_expected) +
                       " frame lines, got '" + raw + "'";
        in_frame = false;
      } else {
        ++frame_seen;
        if (parsed.kind == ParsedLine::Kind::kBatchBegin) {
          parsed.kind = ParsedLine::Kind::kError;
          parsed.error = "nested batch-begin inside a frame";
        }
      }
    } else if (parsed.kind == ParsedLine::Kind::kBatchBegin) {
      in_frame = true;
      frame_expected = parsed.frame_size;
      frame_seen = 0;
      ++stats_.frames;
      continue;
    } else if (parsed.kind == ParsedLine::Kind::kBatchEnd) {
      parsed.kind = ParsedLine::Kind::kError;
      parsed.error = "batch-end outside a frame";
    }

    const std::uint64_t id = ++stats_.requests;

    switch (parsed.kind) {
      case ParsedLine::Kind::kError: {
        ++stats_.protocol_errors;
        std::string line = "protocol-error " + parsed.error;
        if (unordered) line = format_unordered_line(id, line);
        push_text(id, std::move(line));
        break;
      }
      case ParsedLine::Kind::kMode: {
        unordered = parsed.unordered && opt_.allow_unordered;
        std::string line = unordered ? "mode unordered" : "mode ordered";
        if (unordered) line = format_unordered_line(id, line);
        push_text(id, std::move(line));
        break;
      }
      case ParsedLine::Kind::kStats: {
        serve_stats(id, unordered);
        break;
      }
      case ParsedLine::Kind::kRun: {
        ++stats_.runs;
        auto slot = std::make_shared<Slot>();
        slot->id = id;
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++outstanding_;
          Pending pending;
          pending.request = parsed.request;
          pending.raw_line = raw;
          pending.slot = slot;
          pending.unordered = unordered;
          pending_.emplace(id, std::move(pending));
          if (!unordered) queue_.push_back(std::move(slot));
        }
        // The initial send is attempt 1 of the same bounded loop re-sends
        // use - routing, connecting, and failure handling are one path.
        resend(id);
        break;
      }
      case ParsedLine::Kind::kEmpty:
      case ParsedLine::Kind::kBatchBegin:
      case ParsedLine::Kind::kBatchEnd:
        break;  // unreachable; handled above
    }
  }

  // EOF inside a frame - same truncation report as Session::serve.
  if (in_frame) {
    const std::uint64_t id = ++stats_.requests;
    ++stats_.protocol_errors;
    std::string line = "protocol-error batch frame truncated: got " +
                       std::to_string(frame_seen) + " of " +
                       std::to_string(frame_expected) +
                       " lines before EOF (missing batch-end)";
    if (unordered) line = format_unordered_line(id, line);
    push_text(id, std::move(line));
  }

  // Drain: every forwarded request finalizes (reply, busy give-up, or
  // error line) before shutdown - retries keep pumping until then, so a
  // mid-drain worker death still reroutes rather than losing replies.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    stop_retry_ = true;
    closing_ = true;
  }
  retry_cv_.notify_all();
  pump.join();

  // Half-close every channel; each worker session drains and closes, the
  // channel reader sees EOF and exits (not a death - `closing_` is set
  // and the FIFOs are empty). No lock needed for the joins: channels are
  // only created by this thread and the (now joined) retry pump.
  {
    const std::lock_guard<std::mutex> lock(channels_mutex_);
    for (auto& [worker_id, channel] : channels_) {
      channel->stream->close_write();
    }
  }
  for (auto& [worker_id, channel] : channels_) {
    channel->reader.join();
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    finished_ = true;
  }
  queue_cv_.notify_all();
  writer.join();
  return stats_;
}

RouterSessionStats ClusterRouter::serve(Stream& stream) {
  RouterSession session(*this, stream);
  return session.run();
}

std::size_t merge_cache_files(const std::vector<std::string>& shard_paths,
                              const std::string& out_path) {
  // One service big enough to hold every shard's entries; load_cache
  // keeps already-resident keys, so the first file wins a collision
  // (collisions are bit-identical when shards agree on the simulation,
  // which deterministic workers guarantee).
  ServiceOptions options;
  options.worker_threads = 1;
  options.cache_capacity = std::size_t{1} << 20;
  SimulationService service(options);
  for (const std::string& path : shard_paths) {
    service.load_cache(path);  // missing shard files load as empty
  }
  return service.save_cache(out_path);
}

}  // namespace edea::service
