#include "service/simulation_service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/binary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace edea::service {

namespace {

/// Cache file framing: magic + version up front, FNV-1a digest of every
/// preceding byte at the end. The magic doubles as an endianness probe -
/// it is written through ByteWriter::pod like everything else, so a file
/// from a foreign-endian host fails the magic check before anything is
/// decoded.
// Encoded so the *file bytes* (little-endian pod write) spell "EDEACAS\0":
// 'E'=0x45 'D'=0x44 'E'=0x45 'A'=0x41 'C'=0x43 'A'=0x41 'S'=0x53 0x00.
constexpr std::uint64_t kCacheMagic = 0x0053414341454445ull;
// Version 2: entries gained the backend id (the cache key became
// (fingerprint, config, backend)). Version 3: entries gained the batch
// size (the key became (fingerprint, config, backend, batch)) and
// RunSummary gained peak_arena_bytes. Version 4: entries gained the
// workload-transform knobs (the key became (fingerprint, config,
// backend, batch, dilation, depth_multiplier)). Older files are
// rejected, not migrated: a v1 file cannot say which dataflow produced
// its summaries, a v2 file can neither say which batch nor decode into
// the wider summary, and a v3 file cannot say which workload transform
// its fingerprints were computed over.
constexpr std::uint32_t kCacheVersion = 4;

/// Summary-level view of a cached outcome: everything the wire protocol
/// reports (verdict, error text, summary, config echo) and none of the
/// per-layer result payload. Streaming hits deliver this instead of a
/// deep copy of the cached outcome - the full result drags hundreds of
/// kilobytes of activation tensors per request through the allocator,
/// and it dominated the cache-hit serving path that pipelined sessions
/// are bounded by.
core::SweepOutcome summary_view(const core::SweepOutcome& full,
                                std::string name) {
  core::SweepOutcome out;
  out.name = std::move(name);
  out.config = full.config;
  out.backend = full.backend;
  out.batch = full.batch;
  out.dilation = full.dilation;
  out.depth_multiplier = full.depth_multiplier;
  out.ok = full.ok;
  out.error = full.error;
  out.summary = full.summary;
  out.cache_hit = true;
  out.summary_only = true;
  return out;
}

}  // namespace

SimulationService::SimulationService(Options options)
    : options_(options),
      owned_pool_(options.worker_threads > 0
                      ? std::make_unique<util::ThreadPool>(
                            options.worker_threads)
                      : nullptr),
      pool_(owned_pool_ ? owned_pool_.get() : &util::ThreadPool::shared()) {
  EDEA_REQUIRE(options_.tile_parallelism >= 1,
               "service tile_parallelism must be >= 1 (1 = serial tiles)");
}

SimulationService::~SimulationService() { wait_idle(); }

void SimulationService::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Runners count too: a runner that just completed the last job still
  // touches service state on its way out, and the destructor must not
  // pull that state out from under it.
  idle_cv_.wait(lock,
                [this] { return in_flight_ == 0 && active_runners_ == 0; });
}

CacheStats SimulationService::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.entries = cache_.size() + persisted_.size();
  snapshot.in_flight = static_cast<std::uint64_t>(in_flight_);
  snapshot.queued = static_cast<std::uint64_t>(waiting_);
  snapshot.max_queue = static_cast<std::uint64_t>(options_.max_queue);
  return snapshot;
}

std::uint64_t SimulationService::new_session_id() {
  return next_session_id_.fetch_add(1, std::memory_order_relaxed);
}

void SimulationService::validate_job(core::SweepJob& job) {
  EDEA_REQUIRE(job.layers != nullptr && job.input != nullptr,
               "service request '" + job.name + "' must reference a network");
  // A NaN in the key would make it unequal to itself and strand the cache
  // entry (NaN != NaN); reject at the boundary instead.
  EDEA_REQUIRE(std::isfinite(job.config.clock_ghz),
               "service request '" + job.name + "' has a non-finite clock");
  // Resolve the backend up front: the cache key must use the id the
  // simulation will actually run on, and an unknown id must fail the
  // submitter here, not surface later as a broken future from the pool.
  if (job.backend.empty()) job.backend = std::string(core::kDefaultBackendId);
  EDEA_REQUIRE(core::backend_known(job.backend),
               "service request '" + job.name + "' names unknown backend '" +
                   job.backend +
                   "' (known: " + core::known_backends_string() + ")");
  EDEA_REQUIRE(job.batch >= 1,
               "service request '" + job.name +
                   "' must run a positive batch, got " +
                   std::to_string(job.batch));
  EDEA_REQUIRE(job.dilation >= 1,
               "service request '" + job.name +
                   "' must have dilation >= 1, got " +
                   std::to_string(job.dilation));
  EDEA_REQUIRE(job.depth_multiplier >= 1,
               "service request '" + job.name +
                   "' must have depth_multiplier >= 1, got " +
                   std::to_string(job.depth_multiplier));
}

void SimulationService::deliver(Waiter& w, core::SweepOutcome outcome) {
  if (w.callback) {
    w.callback(std::move(outcome));
    return;
  }
  w.promise.set_value(std::move(outcome));
}

void SimulationService::enqueue_lane(std::uint64_t session_id, LaneJob item,
                                     std::unique_lock<std::mutex>& lock) {
  EDEA_ASSERT(lock.owns_lock(), "enqueue_lane needs the service lock");
  std::deque<LaneJob>& lane = lanes_[session_id];
  const bool was_empty = lane.empty();
  lane.push_back(std::move(item));
  ++waiting_;
  if (was_empty) lane_order_.push_back(session_id);

  // Runners are plain pool tasks; more than the pool's width could never
  // run concurrently, and a runner exits the moment every lane is dry, so
  // over-spawning costs one no-op task at most.
  if (active_runners_ >= pool_->size()) return;
  ++active_runners_;
  try {
    auto task = pool_->submit([this] { runner_loop(); });
    (void)task;  // runners report through complete()/deliver()
  } catch (...) {
    --active_runners_;
    if (active_runners_ > 0) return;  // a live runner will drain the lane
    // No runner will ever pick the job up: undo the push and let the
    // caller unwind its accounting.
    lane.pop_back();
    --waiting_;
    if (was_empty) {
      lane_order_.pop_back();
      lanes_.erase(session_id);
    }
    throw;
  }
}

bool SimulationService::next_lane_job(LaneJob* out) {
  // Round-robin across sessions: take the front session's oldest job,
  // then rotate the session to the back if it still has work. One bulk
  // session with a deep lane advances one job per turn, so interactive
  // sessions interleave instead of queueing behind it.
  while (!lane_order_.empty()) {
    const std::uint64_t sid = lane_order_.front();
    lane_order_.pop_front();
    auto it = lanes_.find(sid);
    if (it == lanes_.end() || it->second.empty()) continue;
    *out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) {
      lanes_.erase(it);
    } else {
      lane_order_.push_back(sid);
    }
    return true;
  }
  return false;
}

void SimulationService::runner_loop() {
  for (;;) {
    LaneJob item;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!next_lane_job(&item)) {
        --active_runners_;
        if (in_flight_ == 0 && active_runners_ == 0) idle_cv_.notify_all();
        return;
      }
      --waiting_;
    }

    if (item.use_cache) {
      // Any escape here (evaluate_job never throws simulation failures,
      // but allocation can fail) must still resolve the waiters and the
      // in-flight count - a dropped exception would hang clients.
      try {
        complete(item.key,
                 core::evaluate_job(item.job, options_.tile_parallelism));
      } catch (...) {
        abandon(item.key, std::current_exception());
      }
    } else {
      // cache_capacity == 0: no entry to complete - deliver directly.
      try {
        deliver(item.direct,
                core::evaluate_job(item.job, options_.tile_parallelism));
      } catch (...) {
        if (item.direct.callback) {
          core::SweepOutcome failed;
          failed.name = item.job.name;
          failed.config = item.key.config;
          failed.backend = item.key.backend;
          failed.batch = item.key.batch;
          failed.dilation = item.key.dilation;
          failed.depth_multiplier = item.key.depth_multiplier;
          try {
            std::rethrow_exception(std::current_exception());
          } catch (const std::exception& e) {
            failed.error = e.what();
          } catch (...) {
            failed.error = "unknown simulation failure";
          }
          try {
            item.direct.callback(std::move(failed));
          } catch (...) {
            // Callbacks must not throw; nothing more can be done here.
          }
        } else {
          item.direct.promise.set_exception(std::current_exception());
        }
      }
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0 && active_runners_ == 0) idle_cv_.notify_all();
    }

    if (item.admission_counted) {
      const std::lock_guard<std::mutex> lock(mutex_);
      --admitted_;
    }
  }
}

std::future<core::SweepOutcome> SimulationService::submit(core::SweepJob job) {
  validate_job(job);

  // The fingerprint walks the whole workload - reuse the one the caller
  // precomputed (WorkloadCatalog materialization); hash only when absent,
  // and outside the lock.
  const Key key{job.fingerprint != 0
                    ? job.fingerprint
                    : core::network_fingerprint(*job.layers, *job.input),
                job.config,
                job.backend,
                job.batch,
                job.dilation,
                job.depth_multiplier};

  std::promise<core::SweepOutcome> promise;
  std::future<core::SweepOutcome> future = promise.get_future();

  if (options_.cache_capacity == 0) {
    // Memoization disabled: every submission simulates independently.
    LaneJob item;
    item.key = key;
    item.job = std::move(job);
    item.use_cache = false;
    item.direct.promise = std::move(promise);
    std::unique_lock<std::mutex> lock(mutex_);
    ++stats_.misses;
    ++in_flight_;
    try {
      enqueue_lane(0, std::move(item), lock);
    } catch (...) {
      // The job will never run, so the in-flight count must be unwound
      // here or wait_idle() deadlocks.
      --in_flight_;
      if (in_flight_ == 0 && active_runners_ == 0) idle_cv_.notify_all();
      throw;
    }
    return future;
  }

  bool launch = false;
  bool persisted_hit = false;
  PersistedResult persisted;
  std::shared_ptr<const core::SweepOutcome> cached;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.hits;
      Entry& entry = it->second;
      if (!entry.ready) {
        // Coalesce onto the in-flight simulation.
        Waiter waiter;
        waiter.promise = std::move(promise);
        waiter.name = job.name;
        waiter.hit = true;
        entry.waiters.push_back(std::move(waiter));
        return future;
      }
      lru_.splice(lru_.begin(), lru_, entry.lru);  // touch
      cached = entry.outcome;  // the deep copy happens outside the lock
    } else if (auto pit = persisted_.find(key); pit != persisted_.end()) {
      // Served from the restart-surviving summary cache: no simulation,
      // accounted as a hit, materialized outside the lock.
      ++stats_.hits;
      persisted_hit = true;
      persisted = pit->second;
    } else {
      ++stats_.misses;
      ++in_flight_;
      Entry entry;
      Waiter waiter;
      waiter.promise = std::move(promise);
      waiter.name = job.name;
      waiter.hit = false;
      entry.waiters.push_back(std::move(waiter));
      cache_.emplace(key, std::move(entry));
      launch = true;
    }
  }

  if (persisted_hit) {
    core::SweepOutcome out;
    out.name = std::move(job.name);
    out.config = job.config;
    out.backend = key.backend;
    out.batch = key.batch;
    out.dilation = key.dilation;
    out.depth_multiplier = key.depth_multiplier;
    out.ok = persisted.ok;
    out.error = std::move(persisted.error);
    out.summary = persisted.summary;
    out.cache_hit = true;
    out.summary_only = true;
    promise.set_value(std::move(out));
    return future;
  }

  if (cached) {
    core::SweepOutcome out = *cached;
    out.name = std::move(job.name);
    out.cache_hit = true;
    promise.set_value(std::move(out));
    return future;
  }

  if (launch) {
    LaneJob item;
    item.key = key;
    item.job = std::move(job);
    item.use_cache = true;
    std::unique_lock<std::mutex> lock(mutex_);
    try {
      enqueue_lane(0, std::move(item), lock);
    } catch (...) {
      // Enqueueing failed: no runner will ever complete this entry. Drop
      // it and deliver the failure to anyone who already coalesced onto
      // it, then surface the error to this caller too.
      lock.unlock();
      abandon(key, std::current_exception());
      throw;
    }
  }
  return future;
}

Admission SimulationService::submit_streaming(core::SweepJob job,
                                              std::uint64_t session_id,
                                              CompletionCallback done) {
  EDEA_REQUIRE(done != nullptr,
               "submit_streaming for '" + job.name +
                   "' needs a completion callback");
  validate_job(job);

  // The fingerprint walks the whole workload - reuse the one the caller
  // precomputed (WorkloadCatalog materialization); hash only when absent,
  // and outside the lock.
  const Key key{job.fingerprint != 0
                    ? job.fingerprint
                    : core::network_fingerprint(*job.layers, *job.input),
                job.config,
                job.backend,
                job.batch,
                job.dilation,
                job.depth_multiplier};
  const bool bounded = options_.max_queue > 0;

  if (options_.cache_capacity == 0) {
    // Memoization disabled: every submission is a fresh simulation, so
    // every submission is subject to admission.
    const std::string name = job.name;
    LaneJob item;
    item.key = key;
    item.job = std::move(job);
    item.use_cache = false;
    item.direct.callback = done;  // a copy survives an enqueue failure
    item.admission_counted = bounded;
    std::unique_lock<std::mutex> lock(mutex_);
    if (bounded && admitted_ >= options_.max_queue) {
      ++stats_.rejected;
      return Admission::kBusy;
    }
    ++stats_.misses;
    ++in_flight_;
    if (bounded) {
      ++admitted_;
      stats_.peak_queue = std::max<std::uint64_t>(
          stats_.peak_queue, static_cast<std::uint64_t>(admitted_));
    }
    try {
      enqueue_lane(session_id, std::move(item), lock);
    } catch (...) {
      // Launch failure after admission: unwind the accounting and honor
      // the exactly-once contract with an ok=false outcome - once
      // kAdmitted is decided, the callback always hears back, and a
      // throw from here on would risk a second delivery.
      --in_flight_;
      if (bounded) --admitted_;
      if (in_flight_ == 0 && active_runners_ == 0) idle_cv_.notify_all();
      lock.unlock();
      core::SweepOutcome failed;
      failed.name = name;
      failed.config = key.config;
      failed.backend = key.backend;
      failed.batch = key.batch;
      failed.dilation = key.dilation;
      failed.depth_multiplier = key.depth_multiplier;
      failed.error = "simulation launch failed";
      try {
        done(std::move(failed));
      } catch (...) {
        // Callbacks are documented non-throwing.
      }
    }
    return Admission::kAdmitted;
  }

  bool persisted_hit = false;
  PersistedResult persisted;
  std::shared_ptr<const core::SweepOutcome> cached;
  std::string hit_name;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.hits;
      Entry& entry = it->second;
      if (!entry.ready) {
        // Coalescing starts no new work - always admitted, even at the
        // bound: rejecting it would punish exactly the duplicate the
        // cache exists to absorb.
        Waiter waiter;
        waiter.callback = std::move(done);
        waiter.name = job.name;
        waiter.hit = true;
        entry.waiters.push_back(std::move(waiter));
        return Admission::kAdmitted;
      }
      lru_.splice(lru_.begin(), lru_, entry.lru);  // touch
      cached = entry.outcome;
      hit_name = job.name;
    } else if (auto pit = persisted_.find(key); pit != persisted_.end()) {
      ++stats_.hits;
      persisted_hit = true;
      persisted = pit->second;
      hit_name = job.name;
    } else {
      if (bounded && admitted_ >= options_.max_queue) {
        ++stats_.rejected;
        return Admission::kBusy;
      }
      ++stats_.misses;
      ++in_flight_;
      if (bounded) {
        ++admitted_;
        stats_.peak_queue = std::max<std::uint64_t>(
            stats_.peak_queue, static_cast<std::uint64_t>(admitted_));
      }
      Entry entry;
      Waiter waiter;
      waiter.callback = std::move(done);
      waiter.name = job.name;
      waiter.hit = false;
      entry.waiters.push_back(std::move(waiter));
      cache_.emplace(key, std::move(entry));
      LaneJob item;
      item.key = key;
      item.job = std::move(job);
      item.use_cache = true;
      item.admission_counted = bounded;
      try {
        enqueue_lane(session_id, std::move(item), lock);
      } catch (...) {
        // Launch failure after admission: abandon() drops the pending
        // entry and delivers an ok=false outcome to every waiter -
        // including the callback registered above, which satisfies the
        // exactly-once contract, so the failure is not rethrown.
        if (bounded) --admitted_;
        lock.unlock();
        abandon(key, std::current_exception());
      }
      return Admission::kAdmitted;
    }
  }

  if (persisted_hit) {
    core::SweepOutcome out;
    out.name = std::move(hit_name);
    out.config = key.config;
    out.backend = key.backend;
    out.batch = key.batch;
    out.dilation = key.dilation;
    out.depth_multiplier = key.depth_multiplier;
    out.ok = persisted.ok;
    out.error = std::move(persisted.error);
    out.summary = persisted.summary;
    out.cache_hit = true;
    out.summary_only = true;
    done(std::move(out));
    return Admission::kAdmitted;
  }

  // Warm hit: deliver the summary level only. The streaming consumer (a
  // session formatting a reply line) reads nothing below the summary, so
  // copying the cached per-layer result here would be pure overhead - and
  // a measured 6 us of it per request, the bulk of the hit path.
  done(summary_view(*cached, std::move(hit_name)));
  return Admission::kAdmitted;
}

void SimulationService::complete(const Key& key, core::SweepOutcome outcome) {
  // Allocations come before any state mutation: if one throws, the entry
  // is still cleanly pending and the caller's abandon() path takes over
  // without losing waiters.
  const auto stored =
      std::make_shared<const core::SweepOutcome>(std::move(outcome));
  std::vector<Waiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    EDEA_ASSERT(it != cache_.end() && !it->second.ready,
                "service completed a request with no pending cache entry");
    Entry& entry = it->second;
    lru_.push_front(key);  // the only throwing op under the lock
    entry.lru = lru_.begin();
    entry.outcome = stored;
    entry.ready = true;
    waiters = std::move(entry.waiters);
    entry.waiters.clear();
    // Evict least-recently-used completed results beyond capacity.
    // In-flight entries are never in lru_, so they are pinned, and the
    // just-inserted front entry survives (capacity here is >= 1).
    while (lru_.size() > options_.cache_capacity) {
      const Key victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
      ++stats_.evictions;
    }
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  // Fulfill outside the lock: delivery may run waiter continuations
  // (future::get in another thread, a session callback) that immediately
  // resubmit. A copy failure for one waiter must not strand the others.
  for (Waiter& w : waiters) {
    try {
      // Streaming duplicates that coalesced onto this simulation are
      // hits and hear the summary level, like every other streaming hit.
      // Promise waiters (legacy submit) and the miss that launched the
      // simulation get the full result - in-process callers do read
      // per-layer data, and a miss pays a whole simulation anyway.
      if (w.callback && w.hit) {
        deliver(w, summary_view(*stored, std::move(w.name)));
        continue;
      }
      core::SweepOutcome out = *stored;
      out.name = std::move(w.name);
      out.cache_hit = w.hit;
      deliver(w, std::move(out));
    } catch (...) {
      if (w.callback) {
        // A callback waiter must still hear *something* or its reply slot
        // hangs forever; a summary-free error outcome is the best effort.
        try {
          core::SweepOutcome failed;
          failed.name = std::move(w.name);
          failed.config = key.config;
          failed.backend = key.backend;
          failed.batch = key.batch;
          failed.dilation = key.dilation;
          failed.depth_multiplier = key.depth_multiplier;
          failed.error = "result delivery failed";
          w.callback(std::move(failed));
        } catch (...) {
          // Out of options - callbacks are documented non-throwing.
        }
      } else {
        w.promise.set_exception(std::current_exception());
      }
    }
  }
}

void SimulationService::abandon(const Key& key, std::exception_ptr error) {
  std::vector<Waiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end() && !it->second.ready) {
      waiters = std::move(it->second.waiters);
      cache_.erase(it);  // pending entries are never in lru_
    }
    --in_flight_;
    if (in_flight_ == 0 && active_runners_ == 0) idle_cv_.notify_all();
  }
  std::string message = "unknown simulation failure";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    message = e.what();
  } catch (...) {
  }
  for (Waiter& w : waiters) {
    if (w.callback) {
      // Callback waiters hear failures as ok=false outcomes - the wire
      // has no exception channel, only error lines.
      core::SweepOutcome failed;
      failed.name = std::move(w.name);
      failed.config = key.config;
      failed.backend = key.backend;
      failed.batch = key.batch;
      failed.dilation = key.dilation;
      failed.depth_multiplier = key.depth_multiplier;
      failed.error = message;
      try {
        w.callback(std::move(failed));
      } catch (...) {
        // Callbacks are documented non-throwing.
      }
    } else {
      w.promise.set_exception(error);
    }
  }
}

std::size_t SimulationService::save_cache(const std::string& path) const {
  // Snapshot under the lock: previously loaded persisted entries plus
  // every *ready* live entry (in-flight entries have no result yet). The
  // two maps never share a key, so the merge is a plain concatenation.
  std::vector<std::pair<Key, PersistedResult>> entries;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(persisted_.size() + cache_.size());
    for (const auto& [key, result] : persisted_) {
      entries.emplace_back(key, result);
    }
    for (const auto& [key, entry] : cache_) {
      if (!entry.ready) continue;
      PersistedResult r;
      r.ok = entry.outcome->ok;
      r.error = entry.outcome->error;
      r.summary = entry.outcome->summary;
      entries.emplace_back(key, std::move(r));
    }
  }
  // Deterministic file bytes: unordered_map iteration order must not leak
  // into the artifact (same cache state -> same file, diffable).
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.first.fingerprint != b.first.fingerprint) {
                return a.first.fingerprint < b.first.fingerprint;
              }
              if (a.first.config.hash() != b.first.config.hash()) {
                return a.first.config.hash() < b.first.config.hash();
              }
              if (a.first.backend != b.first.backend) {
                return a.first.backend < b.first.backend;
              }
              if (a.first.batch != b.first.batch) {
                return a.first.batch < b.first.batch;
              }
              if (a.first.dilation != b.first.dilation) {
                return a.first.dilation < b.first.dilation;
              }
              return a.first.depth_multiplier < b.first.depth_multiplier;
            });

  util::ByteWriter w;
  w.pod(kCacheMagic);
  w.pod(kCacheVersion);
  w.pod(static_cast<std::uint64_t>(entries.size()));
  for (const auto& [key, result] : entries) {
    w.pod(key.fingerprint);
    key.config.encode(w);
    w.str(key.backend);
    w.pod(static_cast<std::int32_t>(key.batch));
    w.pod(static_cast<std::int32_t>(key.dilation));
    w.pod(static_cast<std::int32_t>(key.depth_multiplier));
    w.pod(static_cast<std::uint8_t>(result.ok ? 1 : 0));
    w.str(result.error);
    result.summary.encode(w);
  }
  const std::uint64_t digest =
      util::Fnv1a64().bytes(w.buffer().data(), w.buffer().size()).digest();

  // Write-then-rename: a crash mid-write must leave the previous cache
  // file intact, never a checksum-invalid torso that blocks the next
  // start. rename(2) on the same filesystem is atomic.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out.good()) {
      out.write(w.buffer().data(),
                static_cast<std::streamsize>(w.buffer().size()));
      out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
      out.flush();
    }
    if (!out.good()) {
      throw ResourceError("cannot write cache file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ResourceError("cannot move cache file into place at '" + path +
                        "'");
  }
  return entries.size();
}

std::size_t SimulationService::load_cache(const std::string& path) {
  if (options_.cache_capacity == 0) return 0;  // memoization disabled

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return 0;  // a first start has no cache file
  std::ostringstream content;
  content << in.rdbuf();
  const std::string bytes = content.str();

  EDEA_REQUIRE(bytes.size() >= sizeof(kCacheMagic) + sizeof(kCacheVersion) +
                                   sizeof(std::uint64_t) * 2,
               "cache file '" + path + "' is truncated");
  const std::size_t payload_size = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored_digest = 0;
  std::memcpy(&stored_digest, bytes.data() + payload_size,
              sizeof(stored_digest));
  const std::uint64_t digest =
      util::Fnv1a64().bytes(bytes.data(), payload_size).digest();
  EDEA_REQUIRE(digest == stored_digest,
               "cache file '" + path + "' failed its checksum (corrupted)");

  util::ByteReader r(std::string_view(bytes).substr(0, payload_size));
  EDEA_REQUIRE(r.pod<std::uint64_t>() == kCacheMagic,
               "cache file '" + path + "' has the wrong magic");
  const auto version = r.pod<std::uint32_t>();
  EDEA_REQUIRE(version == kCacheVersion,
               "cache file '" + path + "' has unsupported version " +
                   std::to_string(version));
  const auto count = r.pod<std::uint64_t>();

  // Decode fully before touching service state, so a malformed tail can
  // never leave a half-loaded cache behind.
  std::vector<std::pair<Key, PersistedResult>> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Key key;
    key.fingerprint = r.pod<std::uint64_t>();
    key.config = core::EdeaConfig::decode(r);
    key.backend = r.str();
    EDEA_REQUIRE(core::backend_known(key.backend),
                 "cache file '" + path + "' names unknown backend '" +
                     key.backend +
                     "' (known: " + core::known_backends_string() +
                     ") - entries could never be served");
    key.batch = static_cast<int>(r.pod<std::int32_t>());
    EDEA_REQUIRE(key.batch >= 1,
                 "cache file '" + path + "' has an entry with batch " +
                     std::to_string(key.batch) + " (must be >= 1)");
    key.dilation = static_cast<int>(r.pod<std::int32_t>());
    EDEA_REQUIRE(key.dilation >= 1,
                 "cache file '" + path + "' has an entry with dilation " +
                     std::to_string(key.dilation) + " (must be >= 1)");
    key.depth_multiplier = static_cast<int>(r.pod<std::int32_t>());
    EDEA_REQUIRE(key.depth_multiplier >= 1,
                 "cache file '" + path +
                     "' has an entry with depth_multiplier " +
                     std::to_string(key.depth_multiplier) +
                     " (must be >= 1)");
    PersistedResult result;
    result.ok = r.pod<std::uint8_t>() != 0;
    result.error = r.str();
    result.summary = core::RunSummary::decode(r);
    entries.emplace_back(std::move(key), std::move(result));
  }
  EDEA_REQUIRE(r.exhausted(),
               "cache file '" + path + "' has trailing garbage");

  std::size_t loaded = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, result] : entries) {
      if (cache_.find(key) != cache_.end()) continue;  // live entry wins
      persisted_.insert_or_assign(key, std::move(result));
      ++loaded;
    }
  }
  return loaded;
}

std::vector<std::future<core::SweepOutcome>> SimulationService::submit_batch(
    std::vector<core::SweepJob> jobs) {
  std::vector<std::future<core::SweepOutcome>> futures;
  futures.reserve(jobs.size());
  for (core::SweepJob& job : jobs) {
    futures.push_back(submit(std::move(job)));
  }
  return futures;
}

std::vector<core::SweepOutcome> SimulationService::serve(
    std::vector<core::SweepJob> jobs) {
  std::vector<std::future<core::SweepOutcome>> futures =
      submit_batch(std::move(jobs));
  std::vector<core::SweepOutcome> outcomes;
  outcomes.reserve(futures.size());
  for (std::future<core::SweepOutcome>& f : futures) {
    outcomes.push_back(f.get());
  }
  return outcomes;
}

}  // namespace edea::service
