#include "service/simulation_service.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace edea::service {

SimulationService::SimulationService(Options options)
    : options_(options),
      owned_pool_(options.worker_threads > 0
                      ? std::make_unique<util::ThreadPool>(
                            options.worker_threads)
                      : nullptr),
      pool_(owned_pool_ ? owned_pool_.get() : &util::ThreadPool::shared()) {
  EDEA_REQUIRE(options_.tile_parallelism >= 1,
               "service tile_parallelism must be >= 1 (1 = serial tiles)");
}

SimulationService::~SimulationService() { wait_idle(); }

void SimulationService::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

CacheStats SimulationService::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.entries = cache_.size();
  return snapshot;
}

std::future<core::SweepOutcome> SimulationService::submit(core::SweepJob job) {
  EDEA_REQUIRE(job.layers != nullptr && job.input != nullptr,
               "service request '" + job.name + "' must reference a network");
  // A NaN in the key would make it unequal to itself and strand the cache
  // entry (NaN != NaN); reject at the boundary instead.
  EDEA_REQUIRE(std::isfinite(job.config.clock_ghz),
               "service request '" + job.name + "' has a non-finite clock");

  // The fingerprint walks the whole workload - keep it outside the lock.
  const Key key{core::network_fingerprint(*job.layers, *job.input),
                job.config};

  std::promise<core::SweepOutcome> promise;
  std::future<core::SweepOutcome> future = promise.get_future();

  if (options_.cache_capacity == 0) {
    // Memoization disabled: every submission simulates independently.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      ++in_flight_;
    }
    try {
      auto task = pool_->submit(
          [this, job = std::move(job),
           promise = std::move(promise)]() mutable {
            try {
              promise.set_value(
                  core::evaluate_job(job, options_.tile_parallelism));
            } catch (...) {
              promise.set_exception(std::current_exception());
            }
            const std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) idle_cv_.notify_all();
          });
      (void)task;  // completion is observed through the client future
    } catch (...) {
      // Enqueueing failed: the task will never run, so the in-flight
      // count must be unwound here or wait_idle() deadlocks.
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
      throw;
    }
    return future;
  }

  bool launch = false;
  std::shared_ptr<const core::SweepOutcome> cached;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.hits;
      Entry& entry = it->second;
      if (!entry.ready) {
        // Coalesce onto the in-flight simulation.
        entry.waiters.push_back(Waiter{std::move(promise), job.name, true});
        return future;
      }
      lru_.splice(lru_.begin(), lru_, entry.lru);  // touch
      cached = entry.outcome;  // the deep copy happens outside the lock
    } else {
      ++stats_.misses;
      ++in_flight_;
      Entry entry;
      entry.waiters.push_back(Waiter{std::move(promise), job.name, false});
      cache_.emplace(key, std::move(entry));
      launch = true;
    }
  }

  if (cached) {
    core::SweepOutcome out = *cached;
    out.name = std::move(job.name);
    out.cache_hit = true;
    promise.set_value(std::move(out));
    return future;
  }

  if (launch) {
    try {
      auto task = pool_->submit([this, key, job = std::move(job)] {
        // Any escape here (evaluate_job never throws simulation failures,
        // but allocation can fail) must still resolve the waiters' futures
        // and the in-flight count - a dropped exception would hang clients.
        try {
          complete(key,
                   core::evaluate_job(job, options_.tile_parallelism));
        } catch (...) {
          abandon(key, std::current_exception());
        }
      });
      (void)task;  // completion is observed through the client futures
    } catch (...) {
      // Enqueueing failed: no task will ever complete this entry. Drop it
      // and deliver the failure to anyone who already coalesced onto it,
      // then surface the error to this caller too.
      abandon(key, std::current_exception());
      throw;
    }
  }
  return future;
}

void SimulationService::complete(const Key& key, core::SweepOutcome outcome) {
  // Allocations come before any state mutation: if one throws, the entry
  // is still cleanly pending and the caller's abandon() path takes over
  // without losing waiters.
  const auto stored =
      std::make_shared<const core::SweepOutcome>(std::move(outcome));
  std::vector<Waiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    EDEA_ASSERT(it != cache_.end() && !it->second.ready,
                "service completed a request with no pending cache entry");
    Entry& entry = it->second;
    lru_.push_front(key);  // the only throwing op under the lock
    entry.lru = lru_.begin();
    entry.outcome = stored;
    entry.ready = true;
    waiters = std::move(entry.waiters);
    entry.waiters.clear();
    // Evict least-recently-used completed results beyond capacity.
    // In-flight entries are never in lru_, so they are pinned, and the
    // just-inserted front entry survives (capacity here is >= 1).
    while (lru_.size() > options_.cache_capacity) {
      const Key victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
      ++stats_.evictions;
    }
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  // Fulfill outside the lock: set_value may run waiter continuations
  // (future::get in another thread) that immediately resubmit. A copy
  // failure for one waiter must not strand the others.
  for (Waiter& w : waiters) {
    try {
      core::SweepOutcome out = *stored;
      out.name = std::move(w.name);
      out.cache_hit = w.hit;
      w.promise.set_value(std::move(out));
    } catch (...) {
      w.promise.set_exception(std::current_exception());
    }
  }
}

void SimulationService::abandon(const Key& key, std::exception_ptr error) {
  std::vector<Waiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end() && !it->second.ready) {
      waiters = std::move(it->second.waiters);
      cache_.erase(it);  // pending entries are never in lru_
    }
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  for (Waiter& w : waiters) {
    w.promise.set_exception(error);
  }
}

std::vector<std::future<core::SweepOutcome>> SimulationService::submit_batch(
    std::vector<core::SweepJob> jobs) {
  std::vector<std::future<core::SweepOutcome>> futures;
  futures.reserve(jobs.size());
  for (core::SweepJob& job : jobs) {
    futures.push_back(submit(std::move(job)));
  }
  return futures;
}

std::vector<core::SweepOutcome> SimulationService::serve(
    std::vector<core::SweepJob> jobs) {
  std::vector<std::future<core::SweepOutcome>> futures =
      submit_batch(std::move(jobs));
  std::vector<core::SweepOutcome> outcomes;
  outcomes.reserve(futures.size());
  for (std::future<core::SweepOutcome>& f : futures) {
    outcomes.push_back(f.get());
  }
  return outcomes;
}

}  // namespace edea::service
