#include "service/simulation_service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/binary.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace edea::service {

namespace {

/// Cache file framing: magic + version up front, FNV-1a digest of every
/// preceding byte at the end. The magic doubles as an endianness probe -
/// it is written through ByteWriter::pod like everything else, so a file
/// from a foreign-endian host fails the magic check before anything is
/// decoded.
// Encoded so the *file bytes* (little-endian pod write) spell "EDEACAS\0":
// 'E'=0x45 'D'=0x44 'E'=0x45 'A'=0x41 'C'=0x43 'A'=0x41 'S'=0x53 0x00.
constexpr std::uint64_t kCacheMagic = 0x0053414341454445ull;
// Version 2: entries gained the backend id (the cache key became
// (fingerprint, config, backend)). Version 3: entries gained the batch
// size (the key became (fingerprint, config, backend, batch)) and
// RunSummary gained peak_arena_bytes. Version 4: entries gained the
// workload-transform knobs (the key became (fingerprint, config,
// backend, batch, dilation, depth_multiplier)). Older files are
// rejected, not migrated: a v1 file cannot say which dataflow produced
// its summaries, a v2 file can neither say which batch nor decode into
// the wider summary, and a v3 file cannot say which workload transform
// its fingerprints were computed over.
constexpr std::uint32_t kCacheVersion = 4;

}  // namespace

SimulationService::SimulationService(Options options)
    : options_(options),
      owned_pool_(options.worker_threads > 0
                      ? std::make_unique<util::ThreadPool>(
                            options.worker_threads)
                      : nullptr),
      pool_(owned_pool_ ? owned_pool_.get() : &util::ThreadPool::shared()) {
  EDEA_REQUIRE(options_.tile_parallelism >= 1,
               "service tile_parallelism must be >= 1 (1 = serial tiles)");
}

SimulationService::~SimulationService() { wait_idle(); }

void SimulationService::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

CacheStats SimulationService::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.entries = cache_.size() + persisted_.size();
  snapshot.in_flight = static_cast<std::uint64_t>(in_flight_);
  return snapshot;
}

std::future<core::SweepOutcome> SimulationService::submit(core::SweepJob job) {
  EDEA_REQUIRE(job.layers != nullptr && job.input != nullptr,
               "service request '" + job.name + "' must reference a network");
  // A NaN in the key would make it unequal to itself and strand the cache
  // entry (NaN != NaN); reject at the boundary instead.
  EDEA_REQUIRE(std::isfinite(job.config.clock_ghz),
               "service request '" + job.name + "' has a non-finite clock");
  // Resolve the backend up front: the cache key must use the id the
  // simulation will actually run on, and an unknown id must fail the
  // submitter here, not surface later as a broken future from the pool.
  if (job.backend.empty()) job.backend = std::string(core::kDefaultBackendId);
  EDEA_REQUIRE(core::backend_known(job.backend),
               "service request '" + job.name + "' names unknown backend '" +
                   job.backend +
                   "' (known: " + core::known_backends_string() + ")");
  EDEA_REQUIRE(job.batch >= 1,
               "service request '" + job.name +
                   "' must run a positive batch, got " +
                   std::to_string(job.batch));
  EDEA_REQUIRE(job.dilation >= 1,
               "service request '" + job.name +
                   "' must have dilation >= 1, got " +
                   std::to_string(job.dilation));
  EDEA_REQUIRE(job.depth_multiplier >= 1,
               "service request '" + job.name +
                   "' must have depth_multiplier >= 1, got " +
                   std::to_string(job.depth_multiplier));

  // The fingerprint walks the whole workload - keep it outside the lock.
  const Key key{core::network_fingerprint(*job.layers, *job.input),
                job.config,
                job.backend,
                job.batch,
                job.dilation,
                job.depth_multiplier};

  std::promise<core::SweepOutcome> promise;
  std::future<core::SweepOutcome> future = promise.get_future();

  if (options_.cache_capacity == 0) {
    // Memoization disabled: every submission simulates independently.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      ++in_flight_;
    }
    try {
      auto task = pool_->submit(
          [this, job = std::move(job),
           promise = std::move(promise)]() mutable {
            try {
              promise.set_value(
                  core::evaluate_job(job, options_.tile_parallelism));
            } catch (...) {
              promise.set_exception(std::current_exception());
            }
            const std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) idle_cv_.notify_all();
          });
      (void)task;  // completion is observed through the client future
    } catch (...) {
      // Enqueueing failed: the task will never run, so the in-flight
      // count must be unwound here or wait_idle() deadlocks.
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
      throw;
    }
    return future;
  }

  bool launch = false;
  bool persisted_hit = false;
  PersistedResult persisted;
  std::shared_ptr<const core::SweepOutcome> cached;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.hits;
      Entry& entry = it->second;
      if (!entry.ready) {
        // Coalesce onto the in-flight simulation.
        entry.waiters.push_back(Waiter{std::move(promise), job.name, true});
        return future;
      }
      lru_.splice(lru_.begin(), lru_, entry.lru);  // touch
      cached = entry.outcome;  // the deep copy happens outside the lock
    } else if (auto pit = persisted_.find(key); pit != persisted_.end()) {
      // Served from the restart-surviving summary cache: no simulation,
      // accounted as a hit, materialized outside the lock.
      ++stats_.hits;
      persisted_hit = true;
      persisted = pit->second;
    } else {
      ++stats_.misses;
      ++in_flight_;
      Entry entry;
      entry.waiters.push_back(Waiter{std::move(promise), job.name, false});
      cache_.emplace(key, std::move(entry));
      launch = true;
    }
  }

  if (persisted_hit) {
    core::SweepOutcome out;
    out.name = std::move(job.name);
    out.config = job.config;
    out.backend = key.backend;
    out.batch = key.batch;
    out.dilation = key.dilation;
    out.depth_multiplier = key.depth_multiplier;
    out.ok = persisted.ok;
    out.error = std::move(persisted.error);
    out.summary = persisted.summary;
    out.cache_hit = true;
    out.summary_only = true;
    promise.set_value(std::move(out));
    return future;
  }

  if (cached) {
    core::SweepOutcome out = *cached;
    out.name = std::move(job.name);
    out.cache_hit = true;
    promise.set_value(std::move(out));
    return future;
  }

  if (launch) {
    try {
      auto task = pool_->submit([this, key, job = std::move(job)] {
        // Any escape here (evaluate_job never throws simulation failures,
        // but allocation can fail) must still resolve the waiters' futures
        // and the in-flight count - a dropped exception would hang clients.
        try {
          complete(key,
                   core::evaluate_job(job, options_.tile_parallelism));
        } catch (...) {
          abandon(key, std::current_exception());
        }
      });
      (void)task;  // completion is observed through the client futures
    } catch (...) {
      // Enqueueing failed: no task will ever complete this entry. Drop it
      // and deliver the failure to anyone who already coalesced onto it,
      // then surface the error to this caller too.
      abandon(key, std::current_exception());
      throw;
    }
  }
  return future;
}

void SimulationService::complete(const Key& key, core::SweepOutcome outcome) {
  // Allocations come before any state mutation: if one throws, the entry
  // is still cleanly pending and the caller's abandon() path takes over
  // without losing waiters.
  const auto stored =
      std::make_shared<const core::SweepOutcome>(std::move(outcome));
  std::vector<Waiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    EDEA_ASSERT(it != cache_.end() && !it->second.ready,
                "service completed a request with no pending cache entry");
    Entry& entry = it->second;
    lru_.push_front(key);  // the only throwing op under the lock
    entry.lru = lru_.begin();
    entry.outcome = stored;
    entry.ready = true;
    waiters = std::move(entry.waiters);
    entry.waiters.clear();
    // Evict least-recently-used completed results beyond capacity.
    // In-flight entries are never in lru_, so they are pinned, and the
    // just-inserted front entry survives (capacity here is >= 1).
    while (lru_.size() > options_.cache_capacity) {
      const Key victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
      ++stats_.evictions;
    }
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  // Fulfill outside the lock: set_value may run waiter continuations
  // (future::get in another thread) that immediately resubmit. A copy
  // failure for one waiter must not strand the others.
  for (Waiter& w : waiters) {
    try {
      core::SweepOutcome out = *stored;
      out.name = std::move(w.name);
      out.cache_hit = w.hit;
      w.promise.set_value(std::move(out));
    } catch (...) {
      w.promise.set_exception(std::current_exception());
    }
  }
}

void SimulationService::abandon(const Key& key, std::exception_ptr error) {
  std::vector<Waiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end() && !it->second.ready) {
      waiters = std::move(it->second.waiters);
      cache_.erase(it);  // pending entries are never in lru_
    }
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  for (Waiter& w : waiters) {
    w.promise.set_exception(error);
  }
}

std::size_t SimulationService::save_cache(const std::string& path) const {
  // Snapshot under the lock: previously loaded persisted entries plus
  // every *ready* live entry (in-flight entries have no result yet). The
  // two maps never share a key, so the merge is a plain concatenation.
  std::vector<std::pair<Key, PersistedResult>> entries;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(persisted_.size() + cache_.size());
    for (const auto& [key, result] : persisted_) {
      entries.emplace_back(key, result);
    }
    for (const auto& [key, entry] : cache_) {
      if (!entry.ready) continue;
      PersistedResult r;
      r.ok = entry.outcome->ok;
      r.error = entry.outcome->error;
      r.summary = entry.outcome->summary;
      entries.emplace_back(key, std::move(r));
    }
  }
  // Deterministic file bytes: unordered_map iteration order must not leak
  // into the artifact (same cache state -> same file, diffable).
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.first.fingerprint != b.first.fingerprint) {
                return a.first.fingerprint < b.first.fingerprint;
              }
              if (a.first.config.hash() != b.first.config.hash()) {
                return a.first.config.hash() < b.first.config.hash();
              }
              if (a.first.backend != b.first.backend) {
                return a.first.backend < b.first.backend;
              }
              if (a.first.batch != b.first.batch) {
                return a.first.batch < b.first.batch;
              }
              if (a.first.dilation != b.first.dilation) {
                return a.first.dilation < b.first.dilation;
              }
              return a.first.depth_multiplier < b.first.depth_multiplier;
            });

  util::ByteWriter w;
  w.pod(kCacheMagic);
  w.pod(kCacheVersion);
  w.pod(static_cast<std::uint64_t>(entries.size()));
  for (const auto& [key, result] : entries) {
    w.pod(key.fingerprint);
    key.config.encode(w);
    w.str(key.backend);
    w.pod(static_cast<std::int32_t>(key.batch));
    w.pod(static_cast<std::int32_t>(key.dilation));
    w.pod(static_cast<std::int32_t>(key.depth_multiplier));
    w.pod(static_cast<std::uint8_t>(result.ok ? 1 : 0));
    w.str(result.error);
    result.summary.encode(w);
  }
  const std::uint64_t digest =
      util::Fnv1a64().bytes(w.buffer().data(), w.buffer().size()).digest();

  // Write-then-rename: a crash mid-write must leave the previous cache
  // file intact, never a checksum-invalid torso that blocks the next
  // start. rename(2) on the same filesystem is atomic.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out.good()) {
      out.write(w.buffer().data(),
                static_cast<std::streamsize>(w.buffer().size()));
      out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
      out.flush();
    }
    if (!out.good()) {
      throw ResourceError("cannot write cache file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ResourceError("cannot move cache file into place at '" + path +
                        "'");
  }
  return entries.size();
}

std::size_t SimulationService::load_cache(const std::string& path) {
  if (options_.cache_capacity == 0) return 0;  // memoization disabled

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return 0;  // a first start has no cache file
  std::ostringstream content;
  content << in.rdbuf();
  const std::string bytes = content.str();

  EDEA_REQUIRE(bytes.size() >= sizeof(kCacheMagic) + sizeof(kCacheVersion) +
                                   sizeof(std::uint64_t) * 2,
               "cache file '" + path + "' is truncated");
  const std::size_t payload_size = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored_digest = 0;
  std::memcpy(&stored_digest, bytes.data() + payload_size,
              sizeof(stored_digest));
  const std::uint64_t digest =
      util::Fnv1a64().bytes(bytes.data(), payload_size).digest();
  EDEA_REQUIRE(digest == stored_digest,
               "cache file '" + path + "' failed its checksum (corrupted)");

  util::ByteReader r(std::string_view(bytes).substr(0, payload_size));
  EDEA_REQUIRE(r.pod<std::uint64_t>() == kCacheMagic,
               "cache file '" + path + "' has the wrong magic");
  const auto version = r.pod<std::uint32_t>();
  EDEA_REQUIRE(version == kCacheVersion,
               "cache file '" + path + "' has unsupported version " +
                   std::to_string(version));
  const auto count = r.pod<std::uint64_t>();

  // Decode fully before touching service state, so a malformed tail can
  // never leave a half-loaded cache behind.
  std::vector<std::pair<Key, PersistedResult>> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Key key;
    key.fingerprint = r.pod<std::uint64_t>();
    key.config = core::EdeaConfig::decode(r);
    key.backend = r.str();
    EDEA_REQUIRE(core::backend_known(key.backend),
                 "cache file '" + path + "' names unknown backend '" +
                     key.backend +
                     "' (known: " + core::known_backends_string() +
                     ") - entries could never be served");
    key.batch = static_cast<int>(r.pod<std::int32_t>());
    EDEA_REQUIRE(key.batch >= 1,
                 "cache file '" + path + "' has an entry with batch " +
                     std::to_string(key.batch) + " (must be >= 1)");
    key.dilation = static_cast<int>(r.pod<std::int32_t>());
    EDEA_REQUIRE(key.dilation >= 1,
                 "cache file '" + path + "' has an entry with dilation " +
                     std::to_string(key.dilation) + " (must be >= 1)");
    key.depth_multiplier = static_cast<int>(r.pod<std::int32_t>());
    EDEA_REQUIRE(key.depth_multiplier >= 1,
                 "cache file '" + path +
                     "' has an entry with depth_multiplier " +
                     std::to_string(key.depth_multiplier) +
                     " (must be >= 1)");
    PersistedResult result;
    result.ok = r.pod<std::uint8_t>() != 0;
    result.error = r.str();
    result.summary = core::RunSummary::decode(r);
    entries.emplace_back(std::move(key), std::move(result));
  }
  EDEA_REQUIRE(r.exhausted(),
               "cache file '" + path + "' has trailing garbage");

  std::size_t loaded = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, result] : entries) {
      if (cache_.find(key) != cache_.end()) continue;  // live entry wins
      persisted_.insert_or_assign(key, std::move(result));
      ++loaded;
    }
  }
  return loaded;
}

std::vector<std::future<core::SweepOutcome>> SimulationService::submit_batch(
    std::vector<core::SweepJob> jobs) {
  std::vector<std::future<core::SweepOutcome>> futures;
  futures.reserve(jobs.size());
  for (core::SweepJob& job : jobs) {
    futures.push_back(submit(std::move(job)));
  }
  return futures;
}

std::vector<core::SweepOutcome> SimulationService::serve(
    std::vector<core::SweepJob> jobs) {
  std::vector<std::future<core::SweepOutcome>> futures =
      submit_batch(std::move(jobs));
  std::vector<core::SweepOutcome> outcomes;
  outcomes.reserve(futures.size());
  for (std::future<core::SweepOutcome>& f : futures) {
    outcomes.push_back(f.get());
  }
  return outcomes;
}

}  // namespace edea::service
