// chaos_proxy.hpp - a killable TCP relay for fault-injection tests.
//
// A ChaosProxy listens on an ephemeral loopback port and relays every
// accepted connection byte-for-byte to a fixed upstream (host, port),
// propagating half-closes in both directions so line-protocol drains work
// through it unchanged. Pointing a ClusterRouter at the proxy instead of
// the worker makes worker death reproducible: kill() hard-drops every
// relayed connection at once (the router sees EOF mid-stream, exactly
// like a crashed worker process) without actually crashing the worker -
// so the same worker can keep serving other tests, and the test can
// assert about requests that were in flight through the dropped pipe.
//
// Test/bench infrastructure: nothing in the production router depends on
// this file.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace edea::service {

/// A byte relay to one upstream endpoint with a kill switch.
class ChaosProxy {
 public:
  /// Starts listening on an ephemeral 127.0.0.1 port and relaying to
  /// `upstream_host:upstream_port`. Throws ResourceError when the listen
  /// socket cannot be created.
  ChaosProxy(std::string upstream_host, std::uint16_t upstream_port);

  /// kill()s and joins every relay thread.
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// The bound proxy port clients connect to.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Hard-drops every relayed connection (both directions, all at once)
  /// and stops accepting new ones. From the client's point of view the
  /// upstream died mid-stream. Idempotent, callable from any thread.
  void kill() noexcept;

  /// Number of connections accepted so far (live + dropped).
  [[nodiscard]] std::size_t connections() const;

 private:
  struct Relay;

  void accept_loop();

  std::string upstream_host_;
  std::uint16_t upstream_port_ = 0;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;
  bool killed_ = false;
  std::size_t accepted_ = 0;
  std::vector<std::unique_ptr<Relay>> relays_;
  std::thread acceptor_;
};

}  // namespace edea::service
