#include "service/session.hpp"

#include <condition_variable>
#include <deque>
#include <future>
#include <stdexcept>
#include <thread>

#include "nn/model_zoo.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::service {

namespace {

/// Synthetic input tensor for a workload - deterministic in the seed.
/// (Moved verbatim from the old stdin batch driver: request streams keep
/// resolving to bit-identical workloads across the refactor.)
nn::Int8Tensor random_input(const nn::DscLayerSpec& spec, std::uint64_t seed) {
  Rng rng(seed ^ 0xA5A5A5A5A5A5A5A5ull);
  nn::Int8Tensor input(nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return input;
}

/// One queued response, in request-id order.
struct Reply {
  enum class Kind {
    kText,     ///< fully formed line (protocol errors, unresolved networks)
    kOutcome,  ///< await the future, then format the outcome line
    kStats,    ///< snapshot service counters; reader blocks until written
    kEnd,      ///< input exhausted - writer drains out
  };
  Kind kind = Kind::kText;
  std::uint64_t id = 0;
  std::string text;
  std::future<core::SweepOutcome> future;
  bool record = false;  ///< kOutcome: record into SessionStats traffic
};

}  // namespace

const WorkloadCatalog::Workload& WorkloadCatalog::resolve(
    const std::string& network, std::uint64_t seed, int dilation,
    int depth_multiplier) {
  EDEA_REQUIRE(dilation >= 1, "workload dilation must be >= 1, got " +
                                  std::to_string(dilation));
  EDEA_REQUIRE(depth_multiplier >= 1,
               "workload depth multiplier must be >= 1, got " +
                   std::to_string(depth_multiplier));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_tuple(network, seed, dilation, depth_multiplier);
  auto it = workloads_.find(key);
  if (it == workloads_.end()) {
    // zoo_specs throws PreconditionError for unknown names - propagated
    // before anything is inserted.
    std::vector<nn::DscLayerSpec> specs = nn::zoo_specs(network);
    for (nn::DscLayerSpec& spec : specs) {
      // Dilation scales the padding along with the taps, so the 'same'
      // geometry of the zoo layers (k=3, p=1) keeps its output extents.
      spec.dilation = dilation;
      spec.padding *= dilation;
      // Multiplicative: composes with multipliers the geometry already
      // carries (MobileNetV2 expansion factors).
      spec.depth_multiplier *= depth_multiplier;
    }
    auto workload = std::make_unique<Workload>();
    workload->layers = nn::make_random_quant_network(specs, seed);
    workload->input = random_input(specs.front(), seed);
    it = workloads_.emplace(key, std::move(workload)).first;
  }
  return *it->second;
}

Session::Session(SimulationService& service, WorkloadCatalog& catalog,
                 SessionOptions options)
    : service_(service), catalog_(catalog), options_(std::move(options)) {
  EDEA_REQUIRE(core::backend_known(options_.backend),
               "session default backend '" + options_.backend +
                   "' is not registered (known: " +
                   core::known_backends_string() + ")");
  EDEA_REQUIRE(options_.batch >= 1,
               "session default batch must be >= 1, got " +
                   std::to_string(options_.batch));
  EDEA_REQUIRE(options_.dilation >= 1,
               "session default dilation must be >= 1, got " +
                   std::to_string(options_.dilation));
  EDEA_REQUIRE(options_.depth_multiplier >= 1,
               "session default depth multiplier must be >= 1, got " +
                   std::to_string(options_.depth_multiplier));
}

SessionStats Session::serve(Stream& stream) {
  SessionStats stats;

  // Reply queue, strictly FIFO in request-id order. The reader appends,
  // the writer pops; `stats_written_through` flows back so the reader can
  // hold the stats barrier.
  std::mutex mutex;
  std::condition_variable queue_cv;    // writer waits for replies
  std::condition_variable barrier_cv;  // reader waits for stats write-back
  std::deque<Reply> queue;
  std::uint64_t stats_written_through = 0;  // highest stats id answered
  bool stream_broken = false;

  const auto push = [&](Reply reply) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(std::move(reply));
    }
    queue_cv.notify_one();
  };

  std::thread writer([&] {
    for (;;) {
      Reply reply;
      {
        std::unique_lock<std::mutex> lock(mutex);
        queue_cv.wait(lock, [&] { return !queue.empty(); });
        reply = std::move(queue.front());
        queue.pop_front();
      }
      if (reply.kind == Reply::Kind::kEnd) return;

      std::string line;
      switch (reply.kind) {
        case Reply::Kind::kText:
          line = std::move(reply.text);
          break;
        case Reply::Kind::kOutcome: {
          // Blocks until the simulation (or cache hit) resolves. Earlier
          // replies are already written, so write-back stays in id order.
          core::SweepOutcome outcome = reply.future.get();
          line = format_outcome_line(outcome);
          if (reply.record) stats.outcomes.push_back(std::move(outcome));
          break;
        }
        case Reply::Kind::kStats:
          // Every preceding request has been written (and therefore
          // completed), and the reader is paused on the barrier, so this
          // snapshot is exact and deterministic.
          line = format_stats_line(service_.cache_stats());
          break;
        case Reply::Kind::kEnd:
          return;  // unreachable; handled above
      }

      // A broken peer must not wedge the session: keep draining futures
      // (service bookkeeping finishes regardless) but stop writing.
      bool broken;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        broken = stream_broken;
      }
      if (!broken && !stream.write_line(line)) {
        const std::lock_guard<std::mutex> lock(mutex);
        stream_broken = true;
        broken = true;
      }
      if (!broken) ++stats.responses_written;

      if (reply.kind == Reply::Kind::kStats) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          stats_written_through = reply.id;
        }
        barrier_cv.notify_all();
      }
    }
  });

  std::string raw;
  while (stream.read_line(raw)) {
    const ParsedLine parsed =
        parse_request_line(raw, options_.backend, options_.batch,
                           options_.dilation, options_.depth_multiplier);
    if (parsed.kind == ParsedLine::Kind::kEmpty) continue;
    const std::uint64_t id = ++stats.requests;

    switch (parsed.kind) {
      case ParsedLine::Kind::kError: {
        ++stats.protocol_errors;
        Reply reply;
        reply.kind = Reply::Kind::kText;
        reply.id = id;
        reply.text = "protocol-error " + parsed.error;
        push(std::move(reply));
        break;
      }
      case ParsedLine::Kind::kStats: {
        Reply reply;
        reply.kind = Reply::Kind::kStats;
        reply.id = id;
        push(std::move(reply));
        // Barrier: nothing after a stats line is submitted until the
        // stats reply is on the wire.
        std::unique_lock<std::mutex> lock(mutex);
        barrier_cv.wait(lock, [&] { return stats_written_through >= id; });
        break;
      }
      case ParsedLine::Kind::kRun: {
        ++stats.runs;
        const Request& request = parsed.request;
        Reply reply;
        reply.id = id;
        try {
          const WorkloadCatalog::Workload& workload =
              catalog_.resolve(request.network, request.seed,
                               request.dilation, request.depth_multiplier);
          core::SweepJob job;
          job.name = request.job_name();
          job.config = request.config;
          job.backend = request.backend;
          job.batch = request.batch;
          job.dilation = request.dilation;
          job.depth_multiplier = request.depth_multiplier;
          job.layers = &workload.layers;
          job.input = &workload.input;
          if (options_.record_traffic) stats.jobs.push_back(job);
          reply.kind = Reply::Kind::kOutcome;
          reply.record = options_.record_traffic;
          reply.future = service_.submit(std::move(job));
        } catch (const std::exception& e) {
          // Unresolvable network (or a submit-side precondition): answer
          // an error outcome line in this request's slot. Not recorded as
          // traffic - there is no job a verifier could replay.
          if (options_.record_traffic && reply.kind == Reply::Kind::kOutcome) {
            stats.jobs.pop_back();  // submit threw after the job was noted
          }
          core::SweepOutcome unresolved;
          unresolved.name = request.job_name();
          unresolved.config = request.config;
          unresolved.backend = request.backend;
          unresolved.batch = request.batch;
          unresolved.dilation = request.dilation;
          unresolved.depth_multiplier = request.depth_multiplier;
          unresolved.error = e.what();
          reply.kind = Reply::Kind::kText;
          reply.record = false;
          reply.text = format_outcome_line(unresolved);
        }
        push(std::move(reply));
        break;
      }
      case ParsedLine::Kind::kEmpty:
        break;  // unreachable; filtered above
    }
  }

  Reply end;
  end.kind = Reply::Kind::kEnd;
  push(std::move(end));
  writer.join();
  return stats;
}

}  // namespace edea::service
