#include "service/session.hpp"

#include <condition_variable>
#include <deque>
#include <stdexcept>
#include <thread>

#include "nn/model_zoo.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::service {

namespace {

/// Synthetic input tensor for a workload - deterministic in the seed.
/// (Moved verbatim from the old stdin batch driver: request streams keep
/// resolving to bit-identical workloads across the refactor.)
nn::Int8Tensor random_input(const nn::DscLayerSpec& spec, std::uint64_t seed) {
  Rng rng(seed ^ 0xA5A5A5A5A5A5A5A5ull);
  nn::Int8Tensor input(nn::Shape{spec.in_rows, spec.in_cols, spec.in_channels});
  for (auto& v : input.storage()) {
    v = rng.bernoulli(0.4) ? std::int8_t{0}
                           : static_cast<std::int8_t>(rng.uniform_int(0, 127));
  }
  return input;
}

/// One reply slot. Ordered mode queues the slot at submit time (reserving
/// its place in id order) and the completion callback fills it; unordered
/// mode keeps the slot off the queue until its line is ready, so the queue
/// position *is* the completion order. Shared ownership: the reader, the
/// queue, and the service callback may each hold the slot.
struct Slot {
  std::uint64_t id = 0;
  bool ready = false;
  /// Pre-formed line (protocol errors, mode echoes, stats, busy). Unused
  /// when `has_outcome` is set.
  std::string text;
  /// Run completions park the outcome itself and let the writer thread
  /// render it: formatting a reply line costs a couple of microseconds
  /// of string building, and on the reader thread (where completion
  /// callbacks run for cache hits) it was a measurable slice of the
  /// per-request budget that bounds pipelined throughput. The writer has
  /// slack - it spends its time corking and sending.
  bool has_outcome = false;
  bool unordered = false;  ///< frame the rendered line with `id=<n> `
  core::SweepOutcome outcome;
};

/// Renders a drained slot into its wire line. Must run outside the
/// session mutex - see Slot::has_outcome.
std::string render_slot(Slot& slot) {
  if (!slot.has_outcome) return std::move(slot.text);
  std::string line = format_outcome_line(slot.outcome);
  if (slot.unordered) line = format_unordered_line(slot.id, line);
  return line;
}

}  // namespace

const WorkloadCatalog::Workload& WorkloadCatalog::resolve(
    const std::string& network, std::uint64_t seed, int dilation,
    int depth_multiplier) {
  EDEA_REQUIRE(dilation >= 1, "workload dilation must be >= 1, got " +
                                  std::to_string(dilation));
  EDEA_REQUIRE(depth_multiplier >= 1,
               "workload depth multiplier must be >= 1, got " +
                   std::to_string(depth_multiplier));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_tuple(network, seed, dilation, depth_multiplier);
  auto it = workloads_.find(key);
  if (it == workloads_.end()) {
    // zoo_specs throws PreconditionError for unknown names - propagated
    // before anything is inserted.
    std::vector<nn::DscLayerSpec> specs = nn::zoo_specs(network);
    for (nn::DscLayerSpec& spec : specs) {
      // Dilation scales the padding along with the taps, so the 'same'
      // geometry of the zoo layers (k=3, p=1) keeps its output extents.
      spec.dilation = dilation;
      spec.padding *= dilation;
      // Multiplicative: composes with multipliers the geometry already
      // carries (MobileNetV2 expansion factors).
      spec.depth_multiplier *= depth_multiplier;
    }
    auto workload = std::make_unique<Workload>();
    workload->layers = nn::make_random_quant_network(specs, seed);
    workload->input = random_input(specs.front(), seed);
    workload->fingerprint =
        core::network_fingerprint(workload->layers, workload->input);
    it = workloads_.emplace(key, std::move(workload)).first;
  }
  return *it->second;
}

Session::Session(SimulationService& service, WorkloadCatalog& catalog,
                 SessionOptions options)
    : service_(service), catalog_(catalog), options_(std::move(options)) {
  EDEA_REQUIRE(core::backend_known(options_.backend),
               "session default backend '" + options_.backend +
                   "' is not registered (known: " +
                   core::known_backends_string() + ")");
  EDEA_REQUIRE(options_.batch >= 1,
               "session default batch must be >= 1, got " +
                   std::to_string(options_.batch));
  EDEA_REQUIRE(options_.dilation >= 1,
               "session default dilation must be >= 1, got " +
                   std::to_string(options_.dilation));
  EDEA_REQUIRE(options_.depth_multiplier >= 1,
               "session default depth multiplier must be >= 1, got " +
                   std::to_string(options_.depth_multiplier));
  EDEA_REQUIRE(options_.busy_retry_ms >= 1,
               "session busy_retry_ms must be >= 1, got " +
                   std::to_string(options_.busy_retry_ms));
}

SessionStats Session::serve(Stream& stream) {
  SessionStats stats;
  const std::uint64_t session_id = service_.new_session_id();

  // Reply slots. Ordered mode: slots are queued at submit time and filled
  // by completion callbacks, so the queue is in request-id order and the
  // writer stalls on the first pending slot. Unordered mode: slots are
  // queued ready by the callbacks themselves, so the queue is in
  // completion order. The writer corks every consecutively ready slot
  // into one write_lines call - frames drain in a handful of sends.
  std::mutex mutex;
  std::condition_variable queue_cv;  // writer waits for a ready head
  std::condition_variable done_cv;   // reader waits for outstanding == 0
  std::deque<std::shared_ptr<Slot>> queue;
  std::uint64_t outstanding = 0;  // submitted runs not yet completed
  bool finished = false;          // reader exhausted + drained
  bool stream_broken = false;

  /// Pushes an already-formed line (protocol errors, mode echoes, stats,
  /// busy, unresolved networks) as a ready slot.
  const auto push_text = [&](std::uint64_t id, std::string text) {
    auto slot = std::make_shared<Slot>();
    slot->id = id;
    slot->ready = true;
    slot->text = std::move(text);
    {
      const std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(std::move(slot));
    }
    queue_cv.notify_one();
  };

  std::thread writer([&] {
    std::vector<std::shared_ptr<Slot>> drained;
    std::vector<std::string> batch;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        queue_cv.wait(lock, [&] {
          return (!queue.empty() && queue.front()->ready) ||
                 (finished && queue.empty());
        });
        if (queue.empty()) return;  // finished, everything written
        // Cork: take every consecutively ready reply in one drain. A
        // pending slot (ordered mode, simulation still running) ends the
        // batch - its successors must not overtake it. Slots are popped
        // here and rendered below, outside the lock: a ready slot has no
        // writer but this thread.
        while (!queue.empty() && queue.front()->ready) {
          drained.push_back(std::move(queue.front()));
          queue.pop_front();
        }
      }
      for (const std::shared_ptr<Slot>& slot : drained) {
        batch.push_back(render_slot(*slot));
      }
      drained.clear();
      // A broken peer must not wedge the session: completions keep
      // arriving (service bookkeeping finishes regardless), writing stops.
      bool broken;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        broken = stream_broken;
      }
      if (!broken) {
        if (stream.write_lines(batch)) {
          stats.responses_written += batch.size();
        } else {
          const std::lock_guard<std::mutex> lock(mutex);
          stream_broken = true;
        }
      }
      batch.clear();
    }
  });

  // Reply framing mode. Owned by the reader; completion callbacks capture
  // the value in effect when their request arrived, so a mid-stream switch
  // never reframes replies already in flight.
  bool unordered = false;
  // Frame state machine: outside any frame, or inside one with
  // `frame_seen` of `frame_expected` answering lines consumed.
  bool in_frame = false;
  int frame_expected = 0;
  int frame_seen = 0;

  std::string raw;
  while (stream.read_line(raw)) {
    ParsedLine parsed =
        parse_request_line(raw, options_.backend, options_.batch,
                           options_.dilation, options_.depth_multiplier);
    if (parsed.kind == ParsedLine::Kind::kEmpty) continue;

    // Frame bookkeeping happens before the line is answered: control
    // lines open/close the frame (well-formed ones answer nothing), every
    // other line inside a frame consumes one of its declared slots.
    if (in_frame) {
      if (parsed.kind == ParsedLine::Kind::kBatchEnd) {
        if (frame_seen < frame_expected) {
          parsed.kind = ParsedLine::Kind::kError;
          parsed.error = "batch-end after " + std::to_string(frame_seen) +
                         " of " + std::to_string(frame_expected) +
                         " frame lines";
        }
        in_frame = false;  // well-formed or not, the frame is over
        if (parsed.kind == ParsedLine::Kind::kBatchEnd) continue;
      } else if (frame_seen >= frame_expected) {
        // The declared count is exhausted; only batch-end may follow.
        parsed.kind = ParsedLine::Kind::kError;
        parsed.error = "expected batch-end after " +
                       std::to_string(frame_expected) +
                       " frame lines, got '" + raw + "'";
        in_frame = false;  // error recovery: drop the frame state
      } else {
        ++frame_seen;
        if (parsed.kind == ParsedLine::Kind::kBatchBegin) {
          parsed.kind = ParsedLine::Kind::kError;
          parsed.error = "nested batch-begin inside a frame";
        }
      }
    } else if (parsed.kind == ParsedLine::Kind::kBatchBegin) {
      in_frame = true;
      frame_expected = parsed.frame_size;
      frame_seen = 0;
      ++stats.frames;
      continue;  // well-formed frame control: no reply, no id
    } else if (parsed.kind == ParsedLine::Kind::kBatchEnd) {
      parsed.kind = ParsedLine::Kind::kError;
      parsed.error = "batch-end outside a frame";
    }

    const std::uint64_t id = ++stats.requests;

    switch (parsed.kind) {
      case ParsedLine::Kind::kError: {
        ++stats.protocol_errors;
        std::string line = "protocol-error " + parsed.error;
        if (unordered) line = format_unordered_line(id, line);
        push_text(id, std::move(line));
        break;
      }
      case ParsedLine::Kind::kMode: {
        // The reply states the mode now in effect, formatted in that
        // mode - a refused switch (server --ordered) answers a bare
        // `mode ordered`.
        unordered = parsed.unordered && options_.allow_unordered;
        std::string line = unordered ? "mode unordered" : "mode ordered";
        if (unordered) line = format_unordered_line(id, line);
        push_text(id, std::move(line));
        break;
      }
      case ParsedLine::Kind::kStats: {
        // Barrier: wait until every preceding submission has completed,
        // then snapshot. The FIFO queue keeps the line in wire order, so
        // the bytes match the historical written-through barrier exactly -
        // the reader just no longer stalls until the line is on the wire.
        {
          std::unique_lock<std::mutex> lock(mutex);
          done_cv.wait(lock, [&] { return outstanding == 0; });
        }
        std::string line = format_stats_line(service_.cache_stats());
        if (unordered) line = format_unordered_line(id, line);
        push_text(id, std::move(line));
        break;
      }
      case ParsedLine::Kind::kRun: {
        ++stats.runs;
        const Request& request = parsed.request;
        const bool framed_unordered = unordered;
        bool recorded = false;
        std::size_t record_index = 0;
        std::shared_ptr<Slot> slot;
        bool slot_queued = false;
        bool counted_outstanding = false;
        try {
          const WorkloadCatalog::Workload& workload =
              catalog_.resolve(request.network, request.seed,
                               request.dilation, request.depth_multiplier);
          core::SweepJob job;
          job.name = request.job_name();
          job.config = request.config;
          job.backend = request.backend;
          job.batch = request.batch;
          job.dilation = request.dilation;
          job.depth_multiplier = request.depth_multiplier;
          job.layers = &workload.layers;
          job.input = &workload.input;
          job.fingerprint = workload.fingerprint;
          if (options_.record_traffic) {
            stats.jobs.push_back(job);
            record_index = stats.jobs.size() - 1;
            recorded = true;
            const std::lock_guard<std::mutex> lock(mutex);
            stats.outcomes.resize(stats.jobs.size());
          }

          slot = std::make_shared<Slot>();
          slot->id = id;
          {
            const std::lock_guard<std::mutex> lock(mutex);
            ++outstanding;
            counted_outstanding = true;
            if (!framed_unordered) {
              queue.push_back(slot);
              slot_queued = true;
            }
          }
          const bool record = recorded;
          auto callback = [&, slot, framed_unordered, record,
                           record_index](core::SweepOutcome outcome) {
            {
              const std::lock_guard<std::mutex> lock(mutex);
              // Park the outcome; the writer thread renders the line
              // (see Slot::has_outcome). Recording copies - only the
              // --verify gate pays for it.
              if (record) stats.outcomes[record_index] = outcome;
              slot->outcome = std::move(outcome);
              slot->has_outcome = true;
              slot->unordered = framed_unordered;
              slot->ready = true;
              if (framed_unordered) queue.push_back(slot);
              --outstanding;
              // Notify while still holding the mutex. This callback runs
              // on a pool runner thread; with the notify outside the
              // lock, the reader's drain wait can observe
              // outstanding == 0 (woken by an earlier completion), return
              // from serve(), and destroy these condition variables while
              // this thread is still inside notify - a use-after-free
              // that crashes in pthread_cond_broadcast. Holding the lock
              // orders the notify strictly before the drain's wake-up.
              queue_cv.notify_one();
              done_cv.notify_all();
            }
          };

          const Admission verdict = service_.submit_streaming(
              std::move(job), session_id, std::move(callback));
          if (verdict == Admission::kBusy) {
            // The slot answers busy instead; the callback will never run.
            ++stats.busy_replies;
            {
              const std::lock_guard<std::mutex> lock(mutex);
              --outstanding;
              slot->text = format_busy_line(id, options_.busy_retry_ms);
              slot->ready = true;
              if (framed_unordered) queue.push_back(slot);
              if (recorded) {
                // No outcome will ever exist - keep jobs/outcomes aligned
                // for the --verify replay.
                stats.jobs.pop_back();
                stats.outcomes.resize(stats.jobs.size());
                recorded = false;
              }
            }
            queue_cv.notify_one();
            done_cv.notify_all();
          }
        } catch (const std::exception& e) {
          // Unresolvable network (or a submit-side failure): answer an
          // error outcome line in this request's slot. Not recorded as
          // traffic - there is no job a verifier could replay.
          core::SweepOutcome unresolved;
          unresolved.name = request.job_name();
          unresolved.config = request.config;
          unresolved.backend = request.backend;
          unresolved.batch = request.batch;
          unresolved.dilation = request.dilation;
          unresolved.depth_multiplier = request.depth_multiplier;
          unresolved.error = e.what();
          std::string line = format_outcome_line(unresolved);
          if (framed_unordered) line = format_unordered_line(id, line);
          {
            const std::lock_guard<std::mutex> lock(mutex);
            if (recorded) {
              stats.jobs.pop_back();
              stats.outcomes.resize(stats.jobs.size());
            }
            if (counted_outstanding) --outstanding;
            if (slot_queued) {
              // The ordered slot already holds this id's queue position
              // (submit_streaming threw after it was reserved) - fill it
              // rather than wedging the writer on a forever-pending head.
              slot->text = std::move(line);
              slot->ready = true;
            } else {
              auto error_slot = std::make_shared<Slot>();
              error_slot->id = id;
              error_slot->ready = true;
              error_slot->text = std::move(line);
              queue.push_back(std::move(error_slot));
            }
          }
          queue_cv.notify_one();
          done_cv.notify_all();
        }
        break;
      }
      case ParsedLine::Kind::kEmpty:
      case ParsedLine::Kind::kBatchBegin:
      case ParsedLine::Kind::kBatchEnd:
        break;  // unreachable; handled above
    }
  }

  // EOF inside a frame: the peer broke its own framing promise - say so
  // in a final slot instead of silently swallowing the truncation.
  if (in_frame) {
    const std::uint64_t id = ++stats.requests;
    ++stats.protocol_errors;
    std::string line = "protocol-error batch frame truncated: got " +
                       std::to_string(frame_seen) + " of " +
                       std::to_string(frame_expected) +
                       " lines before EOF (missing batch-end)";
    if (unordered) line = format_unordered_line(id, line);
    push_text(id, std::move(line));
  }

  // Drain: every outstanding completion must land in the queue before the
  // writer is told the stream is finished (an unordered callback that
  // fires after `finished` would be lost).
  {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return outstanding == 0; });
    finished = true;
  }
  queue_cv.notify_all();
  writer.join();
  return stats;
}

}  // namespace edea::service
