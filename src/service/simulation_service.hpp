// simulation_service.hpp - a long-running simulation front end over the
// sweep runtime.
//
// Design-space studies are embarrassingly request-parallel: every request
// is an independent (network, accelerator config, backend) simulation.
// The service accepts such requests asynchronously, runs them on a
// util::ThreadPool, and memoizes completed results in a bounded LRU cache
// keyed by (network fingerprint, EdeaConfig, backend id, batch) - in DSE
// refinement the same points are revisited constantly, and a revisit
// should cost a hash lookup, not a simulation. The backend id is part of
// the key because the same workload and configuration on different
// dataflows are different experiments (different cycles and traffic, see
// core/backend.hpp); batch is part of it because a batched run plans a
// different arena (different peak_arena_bytes in the summary).
//
// Concurrency contract:
//   - submit()/submit_batch()/serve()/cache_stats() are thread-safe; many
//     client threads may hammer one service instance,
//   - identical requests in flight are coalesced: the second submitter
//     waits on the first simulation instead of launching a duplicate
//     (and is accounted as a cache hit),
//   - results are bit-identical to a serial core::SweepRunner run of the
//     same jobs - the cache returns stored outcomes verbatim (only `name`
//     and `cache_hit` are rewritten per request),
//   - the destructor drains in-flight work before returning, so a service
//     never outlives its tasks.
//
// Lifetime contract: like SweepJob everywhere else, the pointed-to layers
// and input tensor must stay alive until the request's future is ready.
// Do not call future.get() from inside a task running on the same pool -
// a fully busy pool of blocked waiters cannot make progress.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sweep_runner.hpp"
#include "util/hash.hpp"

namespace edea::util {
class ThreadPool;
}

namespace edea::service {

/// Counters of the memoizing result cache. `hits + misses` equals the
/// number of submissions; every submission increments exactly one of the
/// two under the service lock, so the counters are exact even under
/// concurrent submission.
struct CacheStats {
  std::uint64_t hits = 0;        ///< served from cache (or coalesced)
  std::uint64_t misses = 0;      ///< required a fresh simulation
  std::uint64_t evictions = 0;   ///< completed results dropped by the LRU
  std::size_t entries = 0;       ///< resident entries (live + persisted)
  /// Requests currently simulating (submitted, not yet completed). Unlike
  /// the counters above this is a gauge - a snapshot, not a running total.
  std::uint64_t in_flight = 0;

  // --- admission control (meaningful when max_queue > 0) ------------------
  /// Gauge: admitted jobs sitting in the fair queue, not yet picked up by
  /// a runner. Zero at any stats barrier (the session drains first).
  std::uint64_t queued = 0;
  /// Streaming submissions answered `busy` instead of admitted (total).
  std::uint64_t rejected = 0;
  /// High-water mark of admission-counted jobs in flight. Bounded by
  /// max_queue *by construction*: the admission check rejects before the
  /// gauge could exceed it, so peak_queue <= max_queue is an invariant,
  /// not a hope.
  std::uint64_t peak_queue = 0;
  /// The configured ServiceOptions::max_queue (0 = unbounded). Carried in
  /// the snapshot so format_stats_line knows whether to echo the trio.
  std::uint64_t max_queue = 0;

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// Configuration of a SimulationService.
struct ServiceOptions {
  /// 0 = run requests on the process-wide ThreadPool::shared();
  /// n > 0 = own a dedicated pool of n workers.
  unsigned worker_threads = 0;

  /// Maximum number of *completed* results the cache retains (LRU beyond
  /// that). 0 disables memoization entirely: every submission simulates,
  /// and identical in-flight requests are not coalesced.
  std::size_t cache_capacity = 256;

  /// Tile-level parallelism inside each simulated request: every layer's
  /// buffer tiles split over at most this many workers on the shared pool
  /// (see SweepOptions::tile_parallelism). 1 = serial tiles (default).
  /// Zero and negative values are a PreconditionError at construction -
  /// results are bit-identical at every width, so the knob only trades
  /// request latency against pool pressure, and an accidental 0 from
  /// caller arithmetic must not silently pick a policy.
  int tile_parallelism = 1;

  /// Bounded admission for streaming (wire-facing) submissions: while
  /// this many admission-counted jobs are in flight, submit_streaming
  /// answers Admission::kBusy for any request that would start a *fresh*
  /// simulation. Cache hits and coalescing onto an in-flight duplicate
  /// are always admitted - they start no new work. 0 (default) disables
  /// the bound entirely and keeps every counter and stats line exactly as
  /// before. Direct submit()/serve() callers are in-process batch code,
  /// not wire traffic, and bypass the bound.
  std::size_t max_queue = 0;
};

/// Verdict of an admission-checked submission (submit_streaming).
enum class Admission {
  kAdmitted,  ///< the outcome will be delivered to the callback
  kBusy,      ///< rejected by the bounded queue - retry later; the
              ///< callback will never run
};

class SimulationService {
 public:
  using Options = ServiceOptions;
  /// Completion delivery for submit_streaming. Runs inline on the
  /// submitting thread for cache hits, or on a pool runner thread when
  /// the simulation finishes. Must be cheap and must never block on the
  /// service (it may run inside the completion path) or throw.
  ///
  /// Result fidelity: only the outcome of a *fresh* simulation carries
  /// the per-layer result. Anything served from cache - a warm hit, a
  /// duplicate coalesced onto an in-flight simulation, a persisted-store
  /// hit - arrives summary-only (SweepOutcome::summary_only == true,
  /// empty result): the wire protocol reports nothing below the summary,
  /// and deep-copying the cached activation tensors per request was the
  /// dominant cost of the hit serving path. Callers needing per-layer
  /// data from cached results must use submit(), which always delivers
  /// full outcomes for in-memory hits.
  using CompletionCallback = std::function<void(core::SweepOutcome)>;

  explicit SimulationService(Options options = Options());
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// Submits one request. The returned future resolves to the job's
  /// outcome: a cache hit resolves immediately (cache_hit = true), a miss
  /// resolves when its simulation finishes on the pool. Throws
  /// PreconditionError if the job references no network.
  [[nodiscard]] std::future<core::SweepOutcome> submit(core::SweepJob job);

  /// Hands out a fresh fair-scheduling lane id. Each session takes one at
  /// construction; direct submit() traffic shares lane 0.
  [[nodiscard]] std::uint64_t new_session_id();

  /// The streaming (wire-facing) submission path: admission-checked,
  /// fair-scheduled, callback-delivered. Returns kBusy - and does nothing
  /// except count the rejection - when the job would start a fresh
  /// simulation while ServiceOptions::max_queue admission-counted jobs
  /// are already in flight. Otherwise the outcome reaches `done` exactly
  /// once (inline for hits, from a pool runner for misses; a failed
  /// simulation task delivers an ok=false outcome rather than an
  /// exception). Fresh simulations are queued per `session_id` and
  /// dispatched round-robin across sessions with pending work, so one
  /// bulk submitter cannot starve interactive sessions. Throws
  /// PreconditionError for the same malformed jobs submit() rejects -
  /// always *before* the callback is registered, so on a throw the
  /// callback has not run and never will.
  [[nodiscard]] Admission submit_streaming(core::SweepJob job,
                                           std::uint64_t session_id,
                                           CompletionCallback done);

  /// Submits a batch; future i corresponds to jobs[i]. All requests are
  /// in flight concurrently before this returns.
  [[nodiscard]] std::vector<std::future<core::SweepOutcome>> submit_batch(
      std::vector<core::SweepJob> jobs);

  /// Convenience blocking batch: submit everything, wait for everything.
  /// Outcome i corresponds to jobs[i], exactly like SweepRunner::run.
  [[nodiscard]] std::vector<core::SweepOutcome> serve(
      std::vector<core::SweepJob> jobs);

  /// Snapshot of the cache counters.
  [[nodiscard]] CacheStats cache_stats() const;

  /// Blocks until no request is in flight (futures may still be pending
  /// delivery to their waiters, but all simulations have finished).
  void wait_idle();

  // --- cache persistence (survives service restarts) -----------------------
  //
  // A cache file stores (network fingerprint, EdeaConfig, backend id,
  // batch, dilation, depth multiplier) -> outcome *summaries* -
  // everything the line protocol reports (ok/error text plus the
  // RunSummary), not per-layer tensors - in a versioned, checksummed
  // binary format (util/binary.hpp + util/hash.hpp). The format is at
  // version 4 (version 1 predates backend-keyed entries, version 2
  // predates batch-keyed entries and the summary's peak_arena_bytes
  // field, version 3 predates the dilation/depth-multiplier key fields);
  // files of any other version are rejected loudly, never migrated - a
  // v1 file cannot say which dataflow produced its summaries, a v2 file
  // can neither say which batch nor decode into today's wider RunSummary,
  // and a v3 file cannot say which workload transform its fingerprints
  // were computed over. A request
  // that hits a persisted entry resolves immediately with a summary-only
  // outcome (SweepOutcome::summary_only) that formats bit-identically to
  // the line the original simulation produced, and is accounted as a
  // cache hit. Persisted entries are pinned: they never count against
  // cache_capacity and are never evicted (the file bounds them).

  /// Writes every completed result - live LRU entries plus previously
  /// loaded persisted entries - to `path`, atomically enough for a service
  /// restart (full rewrite, deterministic entry order). Returns the number
  /// of entries written. Throws ResourceError if the file cannot be
  /// written. Call after draining traffic (e.g. at shutdown); in-flight
  /// entries are not persisted.
  std::size_t save_cache(const std::string& path) const;

  /// Loads a cache file previously written by save_cache. Returns the
  /// number of entries loaded; a missing file is not an error (a first
  /// start has no cache) and returns 0. A malformed file - bad magic,
  /// version mismatch, truncation, checksum failure, trailing garbage -
  /// throws PreconditionError and leaves the cache unchanged. Keys already
  /// resident stay resident (the live entry wins). No-op when
  /// cache_capacity is 0 (memoization disabled disables persistence too).
  std::size_t load_cache(const std::string& path);

 private:
  /// Cache key: the workload fingerprint plus the exact configuration
  /// plus the backend id plus the batch size plus the workload-transform
  /// knobs (dilation, depth multiplier). The fingerprint is a content
  /// hash (collisions possible in principle) that already reflects the
  /// transformed layer specs; the other fields are compared exactly, and
  /// the map's equality uses all of them - a collision across different
  /// configs, dataflows, batch sizes, or transforms can never alias.
  struct Key {
    std::uint64_t fingerprint = 0;
    core::EdeaConfig config;
    std::string backend;
    int batch = 1;
    int dilation = 1;
    int depth_multiplier = 1;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      util::Fnv1a64 h;
      h.pod(k.fingerprint).pod(k.config.hash()).str(k.backend).pod(k.batch);
      h.pod(k.dilation).pod(k.depth_multiplier);
      return static_cast<std::size_t>(h.digest());
    }
  };

  /// A client waiting on an entry that is still simulating. Delivery is
  /// either a promise (submit) or a callback (submit_streaming) - exactly
  /// one is armed.
  struct Waiter {
    std::promise<core::SweepOutcome> promise;
    CompletionCallback callback;  ///< when set, used instead of `promise`
    std::string name;  ///< the waiter's own job name
    bool hit = false;  ///< whether this waiter was accounted as a hit
  };

  struct Entry {
    bool ready = false;
    /// Valid once ready. Shared (immutable) so hit paths can copy the
    /// outcome for their client *outside* the service lock.
    std::shared_ptr<const core::SweepOutcome> outcome;
    std::vector<Waiter> waiters;      ///< pending clients while simulating
    std::list<Key>::iterator lru;     ///< position in lru_ (ready only)
  };

  /// One persisted (restart-surviving) result: the protocol-visible part
  /// of an outcome, without per-layer data.
  struct PersistedResult {
    bool ok = false;
    std::string error;
    core::RunSummary summary;
  };

  /// One admitted fresh simulation waiting in (or picked from) the fair
  /// queue. `use_cache` is false only on the cache_capacity == 0 path,
  /// where there is no Entry to complete - the runner delivers straight
  /// to `direct`.
  struct LaneJob {
    Key key;
    core::SweepJob job;
    bool use_cache = true;
    Waiter direct;  ///< armed iff !use_cache
    bool admission_counted = false;
  };

  /// Validates a submission's invariants (network present, finite clock,
  /// known backend, positive counts) and resolves the default backend.
  static void validate_job(core::SweepJob& job);

  /// Marks `key` complete, stores the outcome, applies LRU eviction, and
  /// fulfills every waiter. Runs on the pool at the end of each task.
  void complete(const Key& key, core::SweepOutcome outcome);

  /// Failure path of a pool task (e.g. out-of-memory while storing the
  /// outcome): drops the pending entry so a resubmission retries, and
  /// delivers the exception to every waiter instead of leaving their
  /// futures hanging (callback waiters receive an ok=false outcome).
  void abandon(const Key& key, std::exception_ptr error);

  /// Delivers a ready outcome to one waiter (promise or callback).
  static void deliver(Waiter& w, core::SweepOutcome outcome);

  /// Enqueues a fresh simulation into `session_id`'s lane and ensures
  /// enough runner tasks are active to drain it. Caller holds mutex_.
  /// On a pool-submit failure the job is re-extracted and the error
  /// rethrown, so the caller can unwind its accounting.
  void enqueue_lane(std::uint64_t session_id, LaneJob item,
                    std::unique_lock<std::mutex>& lock);

  /// Pops the next job round-robin across sessions with pending work.
  /// Caller holds mutex_. Returns false when every lane is empty.
  bool next_lane_job(LaneJob* out);

  /// Body of one runner task: drains lane jobs until none are pending.
  void runner_loop();

  Options options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  ///< when worker_threads > 0
  util::ThreadPool* pool_;                        ///< never null

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  std::unordered_map<Key, Entry, KeyHash> cache_;
  std::list<Key> lru_;  ///< ready entries, most recently used first
  /// Entries loaded from a cache file: pinned (never evicted), summary
  /// only. A key is never in both maps - persisted keys hit before they
  /// could miss into `cache_`, and load_cache skips keys already live.
  std::unordered_map<Key, PersistedResult, KeyHash> persisted_;
  CacheStats stats_;

  // --- fair scheduling + admission (guarded by mutex_) --------------------
  std::atomic<std::uint64_t> next_session_id_{1};
  /// Pending fresh simulations, one FIFO lane per session id.
  std::unordered_map<std::uint64_t, std::deque<LaneJob>> lanes_;
  /// Rotation of session ids with a non-empty lane (round-robin order).
  std::deque<std::uint64_t> lane_order_;
  std::size_t waiting_ = 0;         ///< jobs in lanes (the queued gauge)
  std::size_t admitted_ = 0;        ///< admission-counted jobs in flight
  std::size_t active_runners_ = 0;  ///< runner tasks alive on the pool
};

}  // namespace edea::service
