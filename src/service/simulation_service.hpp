// simulation_service.hpp - a long-running simulation front end over the
// sweep runtime.
//
// Design-space studies are embarrassingly request-parallel: every request
// is an independent (network, accelerator config, backend) simulation.
// The service accepts such requests asynchronously, runs them on a
// util::ThreadPool, and memoizes completed results in a bounded LRU cache
// keyed by (network fingerprint, EdeaConfig, backend id, batch) - in DSE
// refinement the same points are revisited constantly, and a revisit
// should cost a hash lookup, not a simulation. The backend id is part of
// the key because the same workload and configuration on different
// dataflows are different experiments (different cycles and traffic, see
// core/backend.hpp); batch is part of it because a batched run plans a
// different arena (different peak_arena_bytes in the summary).
//
// Concurrency contract:
//   - submit()/submit_batch()/serve()/cache_stats() are thread-safe; many
//     client threads may hammer one service instance,
//   - identical requests in flight are coalesced: the second submitter
//     waits on the first simulation instead of launching a duplicate
//     (and is accounted as a cache hit),
//   - results are bit-identical to a serial core::SweepRunner run of the
//     same jobs - the cache returns stored outcomes verbatim (only `name`
//     and `cache_hit` are rewritten per request),
//   - the destructor drains in-flight work before returning, so a service
//     never outlives its tasks.
//
// Lifetime contract: like SweepJob everywhere else, the pointed-to layers
// and input tensor must stay alive until the request's future is ready.
// Do not call future.get() from inside a task running on the same pool -
// a fully busy pool of blocked waiters cannot make progress.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sweep_runner.hpp"
#include "util/hash.hpp"

namespace edea::util {
class ThreadPool;
}

namespace edea::service {

/// Counters of the memoizing result cache. `hits + misses` equals the
/// number of submissions; every submission increments exactly one of the
/// two under the service lock, so the counters are exact even under
/// concurrent submission.
struct CacheStats {
  std::uint64_t hits = 0;        ///< served from cache (or coalesced)
  std::uint64_t misses = 0;      ///< required a fresh simulation
  std::uint64_t evictions = 0;   ///< completed results dropped by the LRU
  std::size_t entries = 0;       ///< resident entries (live + persisted)
  /// Requests currently simulating (submitted, not yet completed). Unlike
  /// the counters above this is a gauge - a snapshot, not a running total.
  std::uint64_t in_flight = 0;

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// Configuration of a SimulationService.
struct ServiceOptions {
  /// 0 = run requests on the process-wide ThreadPool::shared();
  /// n > 0 = own a dedicated pool of n workers.
  unsigned worker_threads = 0;

  /// Maximum number of *completed* results the cache retains (LRU beyond
  /// that). 0 disables memoization entirely: every submission simulates,
  /// and identical in-flight requests are not coalesced.
  std::size_t cache_capacity = 256;

  /// Tile-level parallelism inside each simulated request: every layer's
  /// buffer tiles split over at most this many workers on the shared pool
  /// (see SweepOptions::tile_parallelism). 1 = serial tiles (default).
  /// Zero and negative values are a PreconditionError at construction -
  /// results are bit-identical at every width, so the knob only trades
  /// request latency against pool pressure, and an accidental 0 from
  /// caller arithmetic must not silently pick a policy.
  int tile_parallelism = 1;
};

class SimulationService {
 public:
  using Options = ServiceOptions;

  explicit SimulationService(Options options = Options());
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// Submits one request. The returned future resolves to the job's
  /// outcome: a cache hit resolves immediately (cache_hit = true), a miss
  /// resolves when its simulation finishes on the pool. Throws
  /// PreconditionError if the job references no network.
  [[nodiscard]] std::future<core::SweepOutcome> submit(core::SweepJob job);

  /// Submits a batch; future i corresponds to jobs[i]. All requests are
  /// in flight concurrently before this returns.
  [[nodiscard]] std::vector<std::future<core::SweepOutcome>> submit_batch(
      std::vector<core::SweepJob> jobs);

  /// Convenience blocking batch: submit everything, wait for everything.
  /// Outcome i corresponds to jobs[i], exactly like SweepRunner::run.
  [[nodiscard]] std::vector<core::SweepOutcome> serve(
      std::vector<core::SweepJob> jobs);

  /// Snapshot of the cache counters.
  [[nodiscard]] CacheStats cache_stats() const;

  /// Blocks until no request is in flight (futures may still be pending
  /// delivery to their waiters, but all simulations have finished).
  void wait_idle();

  // --- cache persistence (survives service restarts) -----------------------
  //
  // A cache file stores (network fingerprint, EdeaConfig, backend id,
  // batch, dilation, depth multiplier) -> outcome *summaries* -
  // everything the line protocol reports (ok/error text plus the
  // RunSummary), not per-layer tensors - in a versioned, checksummed
  // binary format (util/binary.hpp + util/hash.hpp). The format is at
  // version 4 (version 1 predates backend-keyed entries, version 2
  // predates batch-keyed entries and the summary's peak_arena_bytes
  // field, version 3 predates the dilation/depth-multiplier key fields);
  // files of any other version are rejected loudly, never migrated - a
  // v1 file cannot say which dataflow produced its summaries, a v2 file
  // can neither say which batch nor decode into today's wider RunSummary,
  // and a v3 file cannot say which workload transform its fingerprints
  // were computed over. A request
  // that hits a persisted entry resolves immediately with a summary-only
  // outcome (SweepOutcome::summary_only) that formats bit-identically to
  // the line the original simulation produced, and is accounted as a
  // cache hit. Persisted entries are pinned: they never count against
  // cache_capacity and are never evicted (the file bounds them).

  /// Writes every completed result - live LRU entries plus previously
  /// loaded persisted entries - to `path`, atomically enough for a service
  /// restart (full rewrite, deterministic entry order). Returns the number
  /// of entries written. Throws ResourceError if the file cannot be
  /// written. Call after draining traffic (e.g. at shutdown); in-flight
  /// entries are not persisted.
  std::size_t save_cache(const std::string& path) const;

  /// Loads a cache file previously written by save_cache. Returns the
  /// number of entries loaded; a missing file is not an error (a first
  /// start has no cache) and returns 0. A malformed file - bad magic,
  /// version mismatch, truncation, checksum failure, trailing garbage -
  /// throws PreconditionError and leaves the cache unchanged. Keys already
  /// resident stay resident (the live entry wins). No-op when
  /// cache_capacity is 0 (memoization disabled disables persistence too).
  std::size_t load_cache(const std::string& path);

 private:
  /// Cache key: the workload fingerprint plus the exact configuration
  /// plus the backend id plus the batch size plus the workload-transform
  /// knobs (dilation, depth multiplier). The fingerprint is a content
  /// hash (collisions possible in principle) that already reflects the
  /// transformed layer specs; the other fields are compared exactly, and
  /// the map's equality uses all of them - a collision across different
  /// configs, dataflows, batch sizes, or transforms can never alias.
  struct Key {
    std::uint64_t fingerprint = 0;
    core::EdeaConfig config;
    std::string backend;
    int batch = 1;
    int dilation = 1;
    int depth_multiplier = 1;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      util::Fnv1a64 h;
      h.pod(k.fingerprint).pod(k.config.hash()).str(k.backend).pod(k.batch);
      h.pod(k.dilation).pod(k.depth_multiplier);
      return static_cast<std::size_t>(h.digest());
    }
  };

  /// A client waiting on an entry that is still simulating.
  struct Waiter {
    std::promise<core::SweepOutcome> promise;
    std::string name;  ///< the waiter's own job name
    bool hit = false;  ///< whether this waiter was accounted as a hit
  };

  struct Entry {
    bool ready = false;
    /// Valid once ready. Shared (immutable) so hit paths can copy the
    /// outcome for their client *outside* the service lock.
    std::shared_ptr<const core::SweepOutcome> outcome;
    std::vector<Waiter> waiters;      ///< pending clients while simulating
    std::list<Key>::iterator lru;     ///< position in lru_ (ready only)
  };

  /// One persisted (restart-surviving) result: the protocol-visible part
  /// of an outcome, without per-layer data.
  struct PersistedResult {
    bool ok = false;
    std::string error;
    core::RunSummary summary;
  };

  /// Marks `key` complete, stores the outcome, applies LRU eviction, and
  /// fulfills every waiter. Runs on the pool at the end of each task.
  void complete(const Key& key, core::SweepOutcome outcome);

  /// Failure path of a pool task (e.g. out-of-memory while storing the
  /// outcome): drops the pending entry so a resubmission retries, and
  /// delivers the exception to every waiter instead of leaving their
  /// futures hanging.
  void abandon(const Key& key, std::exception_ptr error);

  Options options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  ///< when worker_threads > 0
  util::ThreadPool* pool_;                        ///< never null

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  std::unordered_map<Key, Entry, KeyHash> cache_;
  std::list<Key> lru_;  ///< ready entries, most recently used first
  /// Entries loaded from a cache file: pinned (never evicted), summary
  /// only. A key is never in both maps - persisted keys hit before they
  /// could miss into `cache_`, and load_cache skips keys already live.
  std::unordered_map<Key, PersistedResult, KeyHash> persisted_;
  CacheStats stats_;
};

}  // namespace edea::service
