#include "service/pipeline_client.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/backoff.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace edea::service {

namespace {

using Clock = std::chrono::steady_clock;

/// First whitespace-delimited token of a request line ("" when blank).
std::string first_token(const std::string& line) {
  const std::size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const std::size_t end = line.find_first_of(" \t", begin);
  return line.substr(begin, end == std::string::npos ? std::string::npos
                                                     : end - begin);
}

/// Whether the server answers this line at all. Blank and comment lines
/// are ignored by the session (no reply, no id), so the driver must not
/// wait for a response to them.
bool is_answering_line(const std::string& line) {
  const std::string token = first_token(line);
  return !token.empty() && token.front() != '#';
}

/// Frame-control and mode lines in a replayed stream would corrupt the
/// framing this driver manages itself - reject them up front instead of
/// desynchronizing the reply matcher mid-run.
void require_replayable(const std::string& line) {
  const std::string token = first_token(line);
  EDEA_REQUIRE(token != "batch-begin" && token != "batch-end" &&
                   token != "mode",
               "pipelined replay manages frames and modes itself; the "
               "request stream must not contain '" +
                   token + "' lines");
}

}  // namespace

PipelineReport run_pipelined(Stream& stream,
                             const std::vector<std::string>& requests,
                             const PipelineOptions& options) {
  EDEA_REQUIRE(options.window >= 1 &&
                   options.window <= static_cast<std::size_t>(kMaxFrameLines),
               "pipeline window must be in [1, " +
                   std::to_string(kMaxFrameLines) + "], got " +
                   std::to_string(options.window));
  EDEA_REQUIRE(options.max_attempts >= 1,
               "pipeline max_attempts must be >= 1, got " +
                   std::to_string(options.max_attempts));

  PipelineReport report;
  report.responses.resize(requests.size());

  // Only answering lines participate: blank/comment lines keep their
  // (empty) response slot but are never sent - the server would ignore
  // them, and a reply matcher waiting on one would wait forever.
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    require_replayable(requests[i]);
    if (is_answering_line(requests[i])) pending.push_back(i);
  }
  const std::size_t target = pending.size();
  if (target == 0) {
    report.complete = true;
    return report;
  }

  std::uint64_t next_wire_id = 1;

  // Negotiate the wire mode synchronously before anything is in flight -
  // one extra RTT, once, and every later reply has a known shape. The
  // reply states the mode actually in effect, so a server running
  // --ordered is detected here and the reader falls back to FIFO
  // matching.
  if (!options.ordered) {
    std::string reply;
    if (!stream.write_line("mode unordered") || !stream.read_line(reply)) {
      report.error = "connection broke during mode negotiation";
      return report;
    }
    const std::uint64_t handshake_id = next_wire_id++;
    report.unordered =
        reply == format_unordered_line(handshake_id, "mode unordered");
    if (!report.unordered && reply != "mode ordered") {
      report.error = "unexpected mode reply '" + reply + "'";
      return report;
    }
  }

  // Shared between the writing (calling) thread and the reader thread.
  std::mutex mutex;
  std::condition_variable cv;  // reader wakes the writer
  std::unordered_map<std::uint64_t, std::size_t> inflight;  // wire -> logical
  std::deque<std::uint64_t> reply_order;  // FIFO matching (ordered mode)
  std::vector<std::pair<Clock::time_point, std::size_t>> retries;
  std::vector<int> attempts(requests.size(), 0);
  std::size_t completed = 0;
  bool failed = false;
  std::string failure;
  Rng rng(options.backoff_seed);

  std::thread reader([&] {
    std::string line;
    for (;;) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (failed || completed == target) break;
      }
      if (!stream.read_line(line)) {
        const std::lock_guard<std::mutex> lock(mutex);
        failed = true;
        failure = "connection closed with " +
                  std::to_string(target - completed) +
                  " responses missing";
        cv.notify_all();
        break;
      }

      std::uint64_t wire_id = 0;
      int retry_ms = 0;
      std::string payload;
      const std::lock_guard<std::mutex> lock(mutex);
      if (parse_busy_line(line, &wire_id, &retry_ms)) {
        const auto it = inflight.find(wire_id);
        if (it == inflight.end()) {
          failed = true;
          failure = "busy reply for unknown request id: '" + line + "'";
          cv.notify_all();
          break;
        }
        const std::size_t logical = it->second;
        inflight.erase(it);
        if (!report.unordered) reply_order.pop_front();
        ++report.busy_replies;
        if (++attempts[logical] >= options.max_attempts) {
          // Give up: the busy line becomes the response, so the caller
          // sees exactly which requests the server kept rejecting.
          report.responses[logical] = line;
          ++completed;
        } else {
          // Exponential backoff on the server's hint, jittered so a herd
          // of rejected clients does not retry in lockstep (the policy
          // lives in util/backoff.hpp, shared with connect_socket and the
          // cluster router's failover path).
          const auto delay = std::chrono::milliseconds(
              jittered_backoff_ms(attempts[logical], retry_ms, rng));
          retries.emplace_back(Clock::now() + delay, logical);
        }
      } else {
        if (report.unordered) {
          if (!parse_unordered_line(line, &wire_id, &payload)) {
            failed = true;
            failure = "reply without id prefix in unordered mode: '" + line +
                      "'";
            cv.notify_all();
            break;
          }
        } else {
          wire_id = reply_order.front();
          reply_order.pop_front();
          payload = line;
        }
        const auto it = inflight.find(wire_id);
        if (it == inflight.end()) {
          failed = true;
          failure = "reply for unknown request id: '" + line + "'";
          cv.notify_all();
          break;
        }
        report.responses[it->second] = std::move(payload);
        inflight.erase(it);
        ++completed;
      }
      cv.notify_all();
    }
  });

  // The writing loop: keep the window full from `pending`, feeding due
  // retries back into it. Bursts of more than one line go out as a batch
  // frame in a single corked write.
  std::vector<std::string> wire_lines;
  for (;;) {
    std::vector<std::size_t> burst;
    {
      std::unique_lock<std::mutex> lock(mutex);
      for (;;) {
        if (failed || completed == target) break;
        const Clock::time_point now = Clock::now();
        for (std::size_t i = 0; i < retries.size();) {
          if (retries[i].first <= now) {
            pending.push_back(retries[i].second);
            retries.erase(retries.begin() + static_cast<std::ptrdiff_t>(i));
          } else {
            ++i;
          }
        }
        // Refill hysteresis: sending the moment one slot frees would put
        // exactly one line on the wire per completion - a syscall per
        // request on both sides, which caps steady-state throughput well
        // below what framing can do. Waiting for a quarter of the window
        // (or the whole remaining tail, whichever is smaller) keeps the
        // pipe full while every refill is a real frame. Completions keep
        // arriving while this waits, so the free room monotonically grows
        // to the full window and the predicate always becomes true.
        const std::size_t refill = std::min(
            std::max<std::size_t>(1, options.window / 4), pending.size());
        if (!pending.empty() &&
            options.window - inflight.size() >= refill) {
          break;
        }
        if (retries.empty()) {
          cv.wait(lock);
        } else {
          Clock::time_point earliest = retries.front().first;
          for (const auto& retry : retries) {
            earliest = std::min(earliest, retry.first);
          }
          cv.wait_until(lock, earliest);
        }
      }
      if (failed || completed == target) break;

      const std::size_t room = options.window - inflight.size();
      while (!pending.empty() && burst.size() < room) {
        const std::size_t logical = pending.front();
        pending.pop_front();
        const std::uint64_t wire_id = next_wire_id++;
        inflight.emplace(wire_id, logical);
        if (!report.unordered) reply_order.push_back(wire_id);
        burst.push_back(logical);
      }
    }

    // Send outside the lock - the reader owns read_line, this thread owns
    // the writes, which is the Stream concurrency contract.
    wire_lines.clear();
    const bool framed = burst.size() > 1;
    if (framed) {
      wire_lines.push_back("batch-begin " + std::to_string(burst.size()));
    }
    for (const std::size_t logical : burst) {
      wire_lines.push_back(requests[logical]);
    }
    if (framed) {
      wire_lines.push_back("batch-end");
      ++report.frames_sent;
    }
    if (!stream.write_lines(wire_lines)) {
      const std::lock_guard<std::mutex> lock(mutex);
      failed = true;
      failure = "connection broke while sending";
      // The reader unblocks via read_line failing on the broken stream.
    }
  }

  reader.join();
  {
    const std::lock_guard<std::mutex> lock(mutex);
    report.complete = !failed && completed == target;
    if (!report.complete && report.error.empty()) report.error = failure;
  }
  return report;
}

PipelineReport run_serial(Stream& stream,
                          const std::vector<std::string>& requests,
                          const PipelineOptions& options) {
  EDEA_REQUIRE(options.max_attempts >= 1,
               "pipeline max_attempts must be >= 1, got " +
                   std::to_string(options.max_attempts));
  PipelineReport report;
  report.responses.resize(requests.size());
  Rng rng(options.backoff_seed);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string& request = requests[i];
    require_replayable(request);
    // Same skip rule as run_pipelined: lines the server never answers
    // keep an empty response slot.
    if (!is_answering_line(request)) continue;
    int attempt = 0;
    for (;;) {
      std::string reply;
      if (!stream.write_line(request) || !stream.read_line(reply)) {
        report.error =
            "connection broke at request " + std::to_string(i);
        return report;
      }
      std::uint64_t wire_id = 0;
      int retry_ms = 0;
      if (!parse_busy_line(reply, &wire_id, &retry_ms)) {
        report.responses[i] = std::move(reply);
        break;
      }
      ++report.busy_replies;
      if (++attempt >= options.max_attempts) {
        report.responses[i] = std::move(reply);
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(jittered_backoff_ms(attempt, retry_ms,
                                                        rng)));
    }
  }
  report.complete = true;
  return report;
}

}  // namespace edea::service
