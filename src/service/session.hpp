// session.hpp - the session layer of the service tier.
//
// A Session serves exactly one connection (a transport Stream) of the
// line protocol (service/protocol.hpp) against a shared
// SimulationService. It owns everything between raw lines and dispatch:
//
//   - line framing: one request per line in, one response per line out,
//     plus batch frames (`batch-begin N` .. `batch-end`) that cork up to
//     N replies into fewer transport writes,
//   - per-session request ids: every answering line (run, stats, mode,
//     malformed) gets a monotonically increasing id in arrival order;
//     well-formed frame control lines answer nothing and take no id,
//   - reply framing modes: ordered (default - responses written strictly
//     in request-id order, byte-identical to the pre-pipelining protocol)
//     or unordered (negotiated by a `mode unordered` line - responses
//     stream as their simulations finish, each prefixed `id=<n> `),
//   - admission: when the service runs a bounded queue, a run line that
//     would start a fresh simulation at the bound answers
//     `busy id=<n> retry_ms=<m>` in its slot instead of queueing,
//   - error replies: malformed lines answer "protocol-error <msg>" in
//     their slot; unknown networks answer an error outcome line,
//   - workload resolution: zoo names materialize through a shared
//     WorkloadCatalog so duplicate requests across sessions share one
//     materialized network.
//
// Concurrency: serve() runs two threads - the calling thread reads,
// parses, and submits (so independent requests simulate concurrently and
// duplicates coalesce in the service), while a writer thread drains
// completed reply slots, corking every consecutively ready reply into one
// Stream::write_lines call. Completions arrive via
// SimulationService::submit_streaming callbacks, so neither thread ever
// blocks inside the simulation pool; sessions still run on dedicated
// transport threads, never on the pool (see transport.hpp).
//
// `stats` is a barrier: the reader stops submitting until every preceding
// submission of the session has completed, so the reported counters
// reflect exactly the session's preceding requests (all completed) and
// nothing after - deterministic for a given request stream, which is what
// lets CI byte-compare socket sessions against the stdio reference.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/sweep_runner.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "service/simulation_service.hpp"

namespace edea::service {

class Stream;

/// Thread-safe registry of materialized workloads: the quantized network
/// and synthetic input behind one (zoo name, seed, dilation,
/// depth multiplier) tuple. Materialization is deterministic in the key,
/// happens once per key, and the returned reference stays valid (and
/// immutable) for the catalog's lifetime - jobs submitted by any session
/// may point into it.
class WorkloadCatalog {
 public:
  struct Workload {
    std::vector<nn::QuantDscLayer> layers;
    nn::Int8Tensor input;
    /// network_fingerprint(layers, input), hashed once at
    /// materialization. Hashing walks every weight byte (~hundreds of
    /// microseconds), so recomputing it per request would dominate the
    /// cache-hit serving path - sessions stamp this into each SweepJob
    /// instead (SweepJob::fingerprint).
    std::uint64_t fingerprint = 0;
  };

  /// Resolves (materializing on first use). `dilation` is applied to
  /// every layer of the zoo geometry, scaling its padding along so output
  /// extents are preserved; `depth_multiplier` multiplies into each
  /// layer's existing multiplier (so it composes with zoo networks that
  /// already carry one, e.g. MobileNetV2 expansion factors). Throws
  /// PreconditionError for names the model zoo cannot resolve or
  /// non-positive transforms.
  [[nodiscard]] const Workload& resolve(const std::string& network,
                                        std::uint64_t seed, int dilation = 1,
                                        int depth_multiplier = 1);

 private:
  std::mutex mutex_;
  /// std::map with unique_ptr values: addresses stay stable across
  /// inserts while sessions hold references.
  std::map<std::tuple<std::string, std::uint64_t, int, int>,
           std::unique_ptr<Workload>>
      workloads_;
};

struct SessionOptions {
  /// Record every submitted job and its outcome (in request order) in
  /// SessionStats - what the stdio server's --verify gate replays against
  /// a serial SweepRunner.
  bool record_traffic = false;

  /// Backend id `run` requests resolve to when the line carries no
  /// backend= key (the server's --backend flag). Must name a registered
  /// backend - validated at Session construction, because a wrong server
  /// default is an operator error, not a client's protocol error.
  std::string backend = std::string(core::kDefaultBackendId);

  /// Batch size `run` requests resolve to when the line carries no
  /// batch= key (the server's --batch flag). Must be >= 1 - validated at
  /// Session construction for the same operator-vs-client reason.
  int batch = 1;

  /// Workload transforms `run` requests resolve to when the line carries
  /// no dilation= / depth_multiplier= key (the server's --dilation /
  /// --depth-multiplier flags). Must be >= 1 - validated at Session
  /// construction.
  int dilation = 1;
  int depth_multiplier = 1;

  /// Whether a client's `mode unordered` request is honored. False (the
  /// server's --ordered flag) locks the session to ordered replies: the
  /// request answers `mode ordered`, stating what is in effect - the
  /// byte-exact reference behavior CI compares against.
  bool allow_unordered = true;

  /// The retry hint busy replies advertise (`busy id=<n> retry_ms=<m>`).
  /// Must be >= 1 - validated at Session construction.
  int busy_retry_ms = 25;
};

/// What one serve() call did. Counters cover the whole session; the
/// traffic vectors are filled only under SessionOptions::record_traffic
/// and are index-aligned (jobs[i] produced outcomes[i]).
struct SessionStats {
  std::uint64_t requests = 0;         ///< ids assigned (= answering lines)
  std::uint64_t runs = 0;             ///< `run` lines (incl. unresolved)
  std::uint64_t protocol_errors = 0;  ///< malformed lines
  std::uint64_t responses_written = 0;
  std::uint64_t frames = 0;        ///< well-formed batch frames opened
  std::uint64_t busy_replies = 0;  ///< runs rejected by admission control
  std::vector<core::SweepJob> jobs;          ///< resolved, submitted jobs
  std::vector<core::SweepOutcome> outcomes;  ///< their outcomes, in order
};

class Session {
 public:
  Session(SimulationService& service, WorkloadCatalog& catalog,
          SessionOptions options = SessionOptions());

  /// Serves the connection until its input is exhausted, then drains all
  /// pending responses. Blocking; returns the session's statistics.
  SessionStats serve(Stream& stream);

 private:
  SimulationService& service_;
  WorkloadCatalog& catalog_;
  SessionOptions options_;
};

}  // namespace edea::service
