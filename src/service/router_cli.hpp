// router_cli.hpp - command line of the simulation router example, as a
// library component so the flag grammar and --help text are unit testable
// (tests/server_cli_test.cpp carries the battery) instead of living
// untestably in main().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "service/hash_ring.hpp"
#include "service/router.hpp"

namespace edea::service {

/// Parsed router command line. `error` empty means the parse succeeded.
struct RouterCliConfig {
  bool help = false;    ///< --help: print usage, exit 0
  bool listen = false;  ///< --listen given: TCP socket mode
  std::uint16_t port = 0;        ///< --listen PORT (0 = ephemeral)
  std::size_t max_sessions = 0;  ///< --max-sessions N (0 = unlimited)

  /// --worker HOST:PORT, repeatable: attach to running servers. The given
  /// string doubles as the stable ring id.
  std::vector<WorkerEndpoint> workers;
  /// --spawn N: fork N worker server processes instead (ring ids
  /// shard0..shardN-1; 0 = attach mode).
  int spawn = 0;
  /// --server-bin PATH: the worker binary --spawn launches ("" = the
  /// example_simulation_server next to the router binary).
  std::string server_bin;
  /// --cache-file BASE (spawn mode): worker i persists to BASE.shard<i>,
  /// and the router merges the shards into BASE after draining them.
  std::string cache_file;

  int replicas = HashRing::kDefaultReplicas;  ///< --replicas N
  int max_attempts = 5;                       ///< --retry-attempts N
  /// Defaults mirrored to workers (see RouterOptions).
  std::string backend = std::string(core::kDefaultBackendId);
  int batch = 1;
  int dilation = 1;
  int depth_multiplier = 1;
  bool ordered = false;  ///< --ordered: refuse `mode unordered`

  std::string error;  ///< non-empty: bad usage, message says why
};

/// Parses argv (past argv[0]). Never throws; any problem - unknown flag,
/// malformed host:port, contradictory flags (--spawn with --worker,
/// --cache-file without --spawn) - comes back in `error`.
[[nodiscard]] RouterCliConfig parse_router_args(int argc,
                                                const char* const* argv);

/// The full usage/help text; the single source of truth the --help
/// satellite test pins each documented option against.
[[nodiscard]] std::string router_usage();

}  // namespace edea::service
