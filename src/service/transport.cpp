#include "service/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "util/backoff.hpp"
#include "util/check.hpp"

namespace edea::service {

// --- stdio -----------------------------------------------------------------

bool StdioStream::read_line(std::string& line) {
  return static_cast<bool>(std::getline(in_, line));
}

bool StdioStream::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  out_ << line << '\n';
  out_.flush();
  return out_.good();
}

bool StdioStream::write_lines(const std::vector<std::string>& lines) {
  // One flush for the whole batch - an interactive peer still sees every
  // reply, just without a syscall per line.
  const std::lock_guard<std::mutex> lock(write_mutex_);
  for (const std::string& line : lines) {
    out_ << line << '\n';
  }
  out_.flush();
  return out_.good();
}

void StdioTransport::serve(const std::function<void(Stream&)>& handler) {
  StdioStream stream(in_, out_);
  handler(stream);
}

// --- sockets ---------------------------------------------------------------

namespace {

/// Stream over a connected TCP socket. Owns the fd.
class SocketStream : public Stream {
 public:
  explicit SocketStream(int fd) : fd_(fd) {
    // Nagle holds back small segments while earlier ones are unACKed -
    // exactly the shape of a pipelined session's steady state (single
    // refill requests, single streamed replies), where it serializes the
    // wire at RTT granularity. Batching is done explicitly up here
    // (write_lines corks whole frames into one send), so the kernel-side
    // delay only adds latency. Best effort: a socket that refuses the
    // option still works, just slower.
    const int nodelay = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                       sizeof(nodelay));
  }
  ~SocketStream() override {
    if (fd_ >= 0) ::close(fd_);
  }

  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  bool read_line(std::string& line) override {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      if (peer_closed_) {
        // A final line without a trailing '\n' is still a line.
        if (buffer_.empty()) return false;
        line = std::move(buffer_);
        buffer_.clear();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        peer_closed_ = true;
      } else if (errno != EINTR) {
        peer_closed_ = true;  // connection error reads as EOF
      }
    }
  }

  bool write_line(const std::string& line) override {
    // The framing buffer is a member, not a local: one session writes
    // thousands of replies, and reallocating a fresh string per line was
    // a measurable heap churn. clear() keeps the capacity.
    write_buffer_.clear();
    write_buffer_.append(line);
    write_buffer_.push_back('\n');
    return send_all();
  }

  bool write_lines(const std::vector<std::string>& lines) override {
    // Corked: the whole batch becomes one send(2) (modulo short writes),
    // so a drained frame costs one packet, not one per reply.
    write_buffer_.clear();
    for (const std::string& line : lines) {
      write_buffer_.append(line);
      write_buffer_.push_back('\n');
    }
    return send_all();
  }

  void close_write() override { ::shutdown(fd_, SHUT_WR); }

 private:
  /// Sends write_buffer_ fully, absorbing short writes and EINTR.
  bool send_all() {
    std::size_t sent = 0;
    while (sent < write_buffer_.size()) {
      // MSG_NOSIGNAL: a peer that hung up must surface as a failed write,
      // not a process-killing SIGPIPE.
      const ssize_t n = ::send(fd_, write_buffer_.data() + sent,
                               write_buffer_.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd_;
  std::string buffer_;
  std::string write_buffer_;
  bool peer_closed_ = false;
};

[[noreturn]] void throw_errno(const std::string& what) {
  throw ResourceError(what + ": " + std::strerror(errno));
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket()");

  // Restarting the server on the same port must not trip over the old
  // socket lingering in TIME_WAIT - the CI persistence leg does exactly
  // that restart.
  const int reuse = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                     sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind(127.0.0.1:" + std::to_string(options_.port) + ")");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("listen()");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("getsockname()");
  }
  port_ = ntohs(bound.sin_port);
}

SocketTransport::~SocketTransport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketTransport::shutdown() noexcept {
  // shutdown(2) on the listening socket wakes a blocked accept(2) with an
  // error (Linux semantics; this transport is POSIX/Linux by design). The
  // fd itself stays open so serve()'s loop - not a racing destructor -
  // observes the wake-up; the destructor closes it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void SocketTransport::serve(const std::function<void(Stream&)>& handler) {
  std::vector<std::thread> sessions;
  std::size_t accepted = 0;
  while (options_.max_sessions == 0 || accepted < options_.max_sessions) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() or a fatal accept error: stop accepting
    }
    ++accepted;
    sessions.emplace_back([fd, &handler] {
      SocketStream stream(fd);
      try {
        handler(stream);
      } catch (...) {
        // A throwing handler must not terminate the process; the
        // connection is torn down and the next session is unaffected.
      }
    });
  }
  for (std::thread& t : sessions) t.join();
}

std::unique_ptr<Stream> connect_socket(const std::string& host,
                                       std::uint16_t port, int retry_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  EDEA_REQUIRE(::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) == 1,
               "connect_socket host must be a numeric IPv4 address or "
               "'localhost', got '" +
                   host + "'");

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_ms);
  // Jittered exponential backoff between attempts (25ms nominal base,
  // capped at 4x): concurrent clients racing a server that is still
  // binding spread their retries out instead of hammering in lockstep.
  // The jitter is deliberately unseeded per call (clock-derived seed
  // would break nothing, but determinism buys nothing here either);
  // the deadline, not the schedule, bounds total waiting.
  Rng rng(0x636f6e6e65637421ull ^ (static_cast<std::uint64_t>(port) << 16));
  BackoffOptions policy;
  policy.max_shift = 2;
  int attempt = 0;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket()");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return std::make_unique<SocketStream>(fd);
    }
    const int saved = errno;
    ::close(fd);
    const auto now = std::chrono::steady_clock::now();
    const bool retryable = saved == ECONNREFUSED || saved == EINTR;
    if (!retryable || now >= deadline) {
      errno = saved;
      throw_errno("connect(" + numeric + ":" + std::to_string(port) + ")");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const std::int64_t delay = std::min<std::int64_t>(
        jittered_backoff_ms(++attempt, 25, rng, policy), remaining.count());
    std::this_thread::sleep_for(std::chrono::milliseconds(std::max<std::int64_t>(1, delay)));
  }
}

}  // namespace edea::service
