#include "service/client_cli.hpp"

#include <limits>
#include <stdexcept>

#include "core/backend.hpp"
#include "service/protocol.hpp"

namespace edea::service {

namespace {

/// Digit-first positive int, mirroring server_cli's parse_count grammar.
bool parse_positive(const std::string& value, int* out) {
  if (value.empty() || value.front() < '0' || value.front() > '9') {
    return false;
  }
  try {
    std::size_t consumed = 0;
    const unsigned long parsed = std::stoul(value, &consumed);
    if (consumed != value.size() || parsed < 1 ||
        parsed > static_cast<unsigned long>(
                     std::numeric_limits<int>::max())) {
      return false;
    }
    *out = static_cast<int>(parsed);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

std::string client_usage() {
  return
      "usage: simulation_client --connect HOST:PORT [options] < requests.txt\n"
      "\n"
      "Replays a request stream of the EDEA simulation line protocol over\n"
      "TCP against a running simulation_server and prints the server's\n"
      "responses to stdout in request order.\n"
      "\n"
      "options:\n"
      "  --help                 print this help and exit\n"
      "  --connect HOST:PORT    server to connect to (required; retries\n"
      "                         while the server is still binding)\n"
      "  --verify               recompute the reference responses in\n"
      "                         process (the stdio Session code path) and\n"
      "                         exit nonzero unless the server's responses\n"
      "                         are bit-identical\n"
      "  --expect-all-hits      with --verify: additionally require every\n"
      "                         run response to be flagged cache=hit and\n"
      "                         the stats line to report zero misses (the\n"
      "                         persisted-cache replay gate)\n"
      "  --backend ID           default backend of the in-process --verify\n"
      "                         reference for requests that name none;\n"
      "                         must mirror the server's --backend\n"
      "                         (default edea)\n"
      "  --batch N              default images-per-run of the in-process\n"
      "                         --verify reference for requests that carry\n"
      "                         no batch= key; must mirror the server's\n"
      "                         --batch (>= 1; default 1)\n"
      "  --dilation N           default DWC dilation of the in-process\n"
      "                         --verify reference for requests that carry\n"
      "                         no dilation= key; must mirror the server's\n"
      "                         --dilation (>= 1; default 1)\n"
      "  --depth-multiplier N   default extra depthwise multiplier of the\n"
      "                         in-process --verify reference for requests\n"
      "                         that carry no depth_multiplier= key; must\n"
      "                         mirror the server's --depth-multiplier\n"
      "                         (>= 1; default 1)\n"
      "  --pipeline N           keep up to N requests in flight using\n"
      "                         batch frames and unordered streaming,\n"
      "                         retrying busy rejections with jittered\n"
      "                         backoff; responses still print in request\n"
      "                         order (1..4096; default: send everything,\n"
      "                         then read - the legacy one-shot mode)\n"
      "  --ordered              with --pipeline: stay on the byte-exact\n"
      "                         ordered reply protocol instead of\n"
      "                         negotiating `mode unordered`\n";
}

ClientConfig parse_client_args(int argc, const char* const* argv) {
  ClientConfig config;

  const auto value_of = [&](int& i, const std::string& flag,
                            std::string* out) {
    if (i + 1 >= argc) {
      config.error = flag + " needs a value";
      return false;
    }
    *out = argv[++i];
    return true;
  };

  for (int i = 0; i < argc && config.error.empty(); ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help") {
      config.help = true;
    } else if (arg == "--verify") {
      config.verify = true;
    } else if (arg == "--expect-all-hits") {
      config.expect_all_hits = true;
    } else if (arg == "--backend") {
      if (!value_of(i, arg, &value)) break;
      if (!core::backend_known(value)) {
        config.error = "--backend: unknown backend '" + value + "' (known: " +
                       core::known_backends_string() + ")";
        break;
      }
      config.backend = value;
    } else if (arg == "--batch") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_positive(value, &config.batch)) {
        config.error = "--batch needs a positive count, got '" + value + "'";
        break;
      }
    } else if (arg == "--dilation") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_positive(value, &config.dilation)) {
        config.error =
            "--dilation needs a positive count, got '" + value + "'";
        break;
      }
    } else if (arg == "--depth-multiplier") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_positive(value, &config.depth_multiplier)) {
        config.error =
            "--depth-multiplier needs a positive count, got '" + value + "'";
        break;
      }
    } else if (arg == "--pipeline") {
      if (!value_of(i, arg, &value)) break;
      int window = 0;
      if (!parse_positive(value, &window) || window > kMaxFrameLines) {
        config.error = "--pipeline needs a window in [1, " +
                       std::to_string(kMaxFrameLines) + "], got '" + value +
                       "'";
        break;
      }
      config.pipeline = static_cast<std::size_t>(window);
    } else if (arg == "--ordered") {
      config.ordered = true;
    } else if (arg == "--connect") {
      if (!value_of(i, arg, &value)) break;
      const std::size_t colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= value.size()) {
        config.error = "--connect needs HOST:PORT, got '" + value + "'";
        break;
      }
      config.host = value.substr(0, colon);
      const std::string port_text = value.substr(colon + 1);
      // Digit-first, like server_cli's parse_count: std::stoul would skip
      // leading whitespace and accept a '+' sign, and client and server
      // must agree on the port grammar.
      bool port_ok = port_text.front() >= '0' && port_text.front() <= '9';
      unsigned long port = 0;
      if (port_ok) {
        try {
          std::size_t consumed = 0;
          port = std::stoul(port_text, &consumed);
          port_ok = consumed == port_text.size() && port <= 65535;
        } catch (const std::exception&) {
          port_ok = false;
        }
      }
      if (!port_ok) {
        config.error = "--connect: port in '" + value +
                       "' must be a number in [0, 65535]";
        break;
      }
      config.port = static_cast<std::uint16_t>(port);
      config.connect_given = true;
    } else {
      config.error = "unknown option '" + arg + "'";
    }
  }

  if (config.error.empty() && !config.help && !config.connect_given) {
    config.error = "--connect HOST:PORT is required";
  }
  if (config.error.empty() && config.expect_all_hits && !config.verify) {
    config.error = "--expect-all-hits requires --verify";
  }
  if (config.error.empty() && config.ordered && config.pipeline == 0) {
    // The legacy one-shot sender never negotiates a mode, so it is
    // ordered by construction - the flag would be a silent no-op.
    config.error = "--ordered only applies with --pipeline";
  }
  return config;
}

}  // namespace edea::service
