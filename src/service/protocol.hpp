// protocol.hpp - the line-oriented text protocol of the simulation service.
//
// One request per line, one response per line - drivable from a file, a
// pipe, or (later) a socket, with no framing beyond '\n'. Grammar:
//
//   run <network> [key=value ...]     submit a simulation request
//   stats                             report cache + in-flight counters
//   mode ordered|unordered            select the session's reply framing
//   batch-begin <n>                   open a pipelined frame of n lines
//   batch-end                         close the open frame
//   # anything                        comment (ignored, like blank lines)
//
// <network> is a model-zoo name (nn::zoo_specs). Recognized keys:
//   seed       workload seed (weights + input), default 1
//   backend    accelerator backend id (core/backend.hpp registry):
//              edea (default) or serialized; an unknown id is a protocol
//              error - the registry is the protocol's vocabulary, and a
//              typo'd dataflow must fail loudly, not simulate something
//              else
//   batch      images per run (>= 1, default 1): all images share one
//              planned arena/setup (AcceleratorBackend::run_network_batch)
//              and are bit-identical to `batch` standalone runs, so the
//              reply's measurements are per image and unchanged - batch
//              is a cost/amortization knob, not an arithmetic one. The
//              value must be a plain decimal integer: leading '+',
//              whitespace, or trailing junk is a protocol error
//   dilation   DWC dilation applied to every layer of the resolved
//              network (>= 1, default 1; padding scales with it so output
//              extents are preserved). Same strict-integer grammar as
//              batch. Unlike batch this is an arithmetic knob: a dilated
//              workload is a different computation and a different cache
//              key
//   depth_multiplier
//              extra depthwise multiplier applied multiplicatively to
//              every layer (>= 1, default 1; composes with multipliers a
//              zoo network already carries, e.g. MobileNetV2 expansion
//              factors). Same strict-integer grammar; arithmetic knob
//   tn tm td tk kernel init_cycles max_tile_out   EdeaConfig overrides;
//              same strict-integer grammar as batch (>= 0 - semantic
//              ranges are EdeaConfig::validate's job, reported in the
//              outcome line)
//   clock_ghz  clock in GHz
//
// Responses (one per `run`, in request order; <network>@<seed> is the
// request's job_name(), <config> is EdeaConfig::to_string(), <backend>
// the resolved backend id; `batch=<n>`, `dilation=<n>`, and
// `depth_multiplier=<n>` are echoed after backend= - in that order - only
// when each n > 1, keeping default-valued responses byte-identical to the
// earlier protocol):
//   ok <network>@<seed> <config> backend=<backend> [batch=<n>]
//      [dilation=<n>] [depth_multiplier=<n>] cycles=<n>
//      ops=<n> gops=<x> layers=<n> out=<hex64> cache=hit|miss
//   error <network>@<seed> <config> backend=<backend> [batch=<n>]
//      [dilation=<n>] [depth_multiplier=<n>] cache=hit|miss msg=<text>
//
// A `stats` request answers with one line of exact service counters:
//   stats hits=<n> misses=<n> evictions=<n> entries=<n> inflight=<n>
//      [queued=<n> rejected=<n> peak_queue=<n>]
// The admission trio is echoed only when the service runs with a bounded
// admission queue (max_queue > 0) - the same only-when-non-default rule
// the outcome line uses for batch=, so every pre-admission stats line
// stays byte-identical. The session layer (service/session.hpp) serves
// `stats` as a barrier - the reply reflects every preceding request of
// the session, completed, and nothing submitted after it - so the line is
// deterministic for a given request stream.
//
// Pipelining (PR 9). A client may wrap up to kMaxFrameLines request lines
// in a frame:
//   batch-begin <n>
//   <exactly n answering lines>
//   batch-end
// Well-formed batch-begin/batch-end lines answer nothing (like comments)
// and consume no request id; every line between them is parsed and
// answered exactly as if it had arrived bare, so a frame is purely a
// transport-batching hint (the session corks the frame's replies into
// fewer writes). Bare lines stay valid - they are 1-frames. Frame
// violations (nested batch-begin, batch-end outside a frame or before n
// lines, a non-batch-end line after n lines, EOF inside a frame) answer
// `protocol-error ...` like any malformed line.
//
// Reply framing is per-session and negotiated on the wire:
//   mode ordered       replies in request-id order (the default - byte
//                      identical to the pre-pipelining protocol)
//   mode unordered     replies stream as they complete, each prefixed
//                      with `id=<n> ` so the client can match them
// The server answers with the mode now in effect (`mode ordered` or
// `mode unordered`, id-prefixed iff the effective mode is unordered); a
// server running --ordered refuses the switch by answering
// `mode ordered`.
//
// Under a bounded admission queue, a `run` line that would start a fresh
// simulation while max_queue admitted jobs are already in flight is not
// queued; it answers
//   busy id=<n> retry_ms=<m>
// in its slot (the id it would have had), and the client owns the retry
// (resubmit after ~retry_ms with jitter; see PipelineClient). Cache hits
// and requests coalescing onto an in-flight duplicate are always
// admitted - they start no new work.
//
// The parser validates shape only (tokens, numbers, known keys); whether a
// configuration can map a network is the simulation's verdict, reported in
// the outcome line - infeasible points are data, not protocol errors.
#pragma once

#include <cstdint>
#include <string>

#include "core/backend.hpp"
#include "core/config.hpp"
#include "core/sweep_runner.hpp"
#include "service/simulation_service.hpp"

namespace edea::service {

/// A parsed `run` request.
struct Request {
  std::string network;             ///< model-zoo name (unresolved)
  std::uint64_t seed = 1;          ///< synthetic weight/input seed
  core::EdeaConfig config;         ///< paper defaults + line overrides
  /// Resolved backend id: the line's backend= override, else the parse
  /// call's default. Always a registered id - unknown ids never parse.
  std::string backend = std::string(core::kDefaultBackendId);
  /// Images per run: the line's batch= override, else the parse call's
  /// default. Always >= 1 - non-positive values never parse.
  int batch = 1;
  /// Workload transforms: the line's dilation= / depth_multiplier=
  /// overrides, else 1. Always >= 1 - non-positive values never parse.
  int dilation = 1;
  int depth_multiplier = 1;

  /// Canonical job name: "<network>@<seed>" - what outcome lines echo.
  [[nodiscard]] std::string job_name() const;
};

/// Most request lines one frame may carry. Far above any sane pipeline
/// depth; a larger N is a protocol error, because accepting an absurd
/// frame size would let one malformed line commit the session to
/// swallowing gigabytes as "frame content".
inline constexpr int kMaxFrameLines = 4096;

/// Result of parsing one protocol line.
struct ParsedLine {
  enum class Kind {
    kEmpty,       ///< blank line or comment - nothing to do
    kRun,         ///< `request` holds a simulation request
    kStats,       ///< client asked for cache counters
    kMode,        ///< reply-framing switch - `unordered` holds the ask
    kBatchBegin,  ///< frame open - `frame_size` holds its line count
    kBatchEnd,    ///< frame close
    kError,       ///< malformed line - `error` explains
  };
  Kind kind = Kind::kEmpty;
  Request request;
  std::string error;
  /// kBatchBegin: the declared line count (1..kMaxFrameLines).
  int frame_size = 0;
  /// kMode: true iff the client asked for unordered replies.
  bool unordered = false;
};

/// Strict decimal parsers - the single integer grammar of the wire
/// protocol. A value parses iff it is plain decimal digits, fully
/// consumed: no leading whitespace, no '+'/'-' sign, no trailing junk
/// (all of which std::stoi-family parsers tolerate), and no overflow -
/// out-of-range values like 99999999999999 are rejected by digit
/// accumulation with an explicit range check, never via exception
/// behavior. Exposed here (not buried in the .cpp) so the negative
/// protocol tests can probe inputs the whitespace-splitting tokenizer
/// could never deliver, like " 4".
///   parse_strict_u64    any uint64 value (seeds)
///   parse_strict_int    int values >= 0 (EdeaConfig overrides;
///                       init_cycles=0 is valid)
///   parse_strict_count  int values >= 1 (batch/dilation/depth_multiplier)
/// Each returns false without touching *out on rejection.
[[nodiscard]] bool parse_strict_u64(const std::string& text,
                                    std::uint64_t* out);
[[nodiscard]] bool parse_strict_int(const std::string& text, int* out);
[[nodiscard]] bool parse_strict_count(const std::string& text, int* out);

/// Parses one request line. Never throws on wire input: malformed lines -
/// including unknown backend= ids and non-positive batch=, dilation=, or
/// depth_multiplier= values - are a kError result (a service must survive
/// bad clients). `default_backend` is what `run` requests resolve to when
/// the line carries no backend= key (the server's --backend), and
/// `default_batch` / `default_dilation` / `default_depth_multiplier`
/// likewise for their keys (the server's --batch / --dilation /
/// --depth-multiplier); all are caller configuration, not wire data, so
/// an unknown default backend or a non-positive default count is a
/// PreconditionError.
[[nodiscard]] ParsedLine parse_request_line(
    const std::string& line,
    const std::string& default_backend = std::string(
        core::kDefaultBackendId),
    int default_batch = 1, int default_dilation = 1,
    int default_depth_multiplier = 1);

/// Formats the response line for one completed request.
[[nodiscard]] std::string format_outcome_line(
    const core::SweepOutcome& outcome);

/// Formats the `stats` response line. The admission counters (queued=,
/// rejected=, peak_queue=) are echoed only when `stats.max_queue > 0` -
/// a service without a bounded admission queue keeps the exact
/// pre-admission bytes.
[[nodiscard]] std::string format_stats_line(const CacheStats& stats);

/// Formats a busy (admission-rejected) reply: `busy id=<n> retry_ms=<m>`.
/// The line is self-identifying in both reply modes - it carries its
/// request id in-band, so an unordered session does not prefix it again.
[[nodiscard]] std::string format_busy_line(std::uint64_t id, int retry_ms);

/// Frames one reply line for an unordered session: `id=<n> <line>`.
[[nodiscard]] std::string format_unordered_line(std::uint64_t id,
                                                const std::string& line);

/// Reply parsers - the exact inverses of the formatters above, shared by
/// everything that consumes the server side of the wire (the pipelined
/// client, the cluster router). Each matches its line shape strictly
/// (digit runs, exact separators, nothing trailing) and returns false
/// without touching the outputs on any mismatch - a reply that merely
/// *starts* like a busy line is some other line.

/// Parses `busy id=<n> retry_ms=<m>` (format_busy_line's output) exactly.
[[nodiscard]] bool parse_busy_line(const std::string& line, std::uint64_t* id,
                                   int* retry_ms);

/// Parses the `id=<n> ` unordered framing prefix (format_unordered_line's
/// output); on success `*rest` is the payload with the prefix stripped.
[[nodiscard]] bool parse_unordered_line(const std::string& line,
                                        std::uint64_t* id, std::string* rest);

/// Parses a `stats ...` reply line (format_stats_line's output) into
/// counters. The wire does not carry the queue bound itself, only whether
/// the admission trio was echoed - so on success `out->max_queue` is 1
/// when the trio was present and 0 when it was absent (a presence flag,
/// not the configured bound). That convention makes the round trip
/// byte-stable: format_stats_line(parsed) reproduces the input line, and
/// summing parsed stats across shards keeps the trio iff any shard had a
/// bounded queue.
[[nodiscard]] bool parse_stats_line(const std::string& line, CacheStats* out);

}  // namespace edea::service
