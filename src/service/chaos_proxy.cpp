#include "service/chaos_proxy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace edea::service {

namespace {

/// Blocking connect to a numeric IPv4 / localhost address. Returns -1 on
/// failure (the relay then drops the freshly accepted client, which is a
/// legitimate chaos outcome in itself).
int connect_upstream(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Copies bytes from `from` to `to` until EOF or error, then propagates
/// the half-close so protocol drains traverse the proxy.
void pump(int from, int to) {
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::read(from, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    std::size_t sent = 0;
    while (sent < static_cast<std::size_t>(got)) {
      const ssize_t wrote =
          ::send(to, chunk + sent, static_cast<std::size_t>(got) - sent,
                 MSG_NOSIGNAL);
      if (wrote < 0 && errno == EINTR) continue;
      if (wrote <= 0) return;
      sent += static_cast<std::size_t>(wrote);
    }
  }
  ::shutdown(to, SHUT_WR);
}

}  // namespace

/// One relayed connection: the accepted client fd, the upstream fd, and
/// the two pump threads moving bytes between them.
struct ChaosProxy::Relay {
  int client_fd = -1;
  int upstream_fd = -1;
  std::thread forward;   ///< client -> upstream
  std::thread backward;  ///< upstream -> client

  ~Relay() {
    if (forward.joinable()) forward.join();
    if (backward.joinable()) backward.join();
    if (client_fd >= 0) ::close(client_fd);
    if (upstream_fd >= 0) ::close(upstream_fd);
  }
};

ChaosProxy::ChaosProxy(std::string upstream_host, std::uint16_t upstream_port)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw ResourceError("chaos proxy: socket() failed");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw ResourceError("chaos proxy: cannot bind a loopback port");
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) != 0) {
    ::close(listen_fd_);
    throw ResourceError("chaos proxy: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

ChaosProxy::~ChaosProxy() {
  kill();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<Relay>> relays;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    relays.swap(relays_);
  }
  relays.clear();  // joins pumps, closes fds
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ChaosProxy::accept_loop() {
  for (;;) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;  // kill() shut the listen socket down
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++accepted_;
      if (killed_) {
        // Raced with kill(): the upstream is "dead", drop the client.
        ::close(client_fd);
        continue;
      }
    }
    const int upstream_fd = connect_upstream(upstream_host_, upstream_port_);
    if (upstream_fd < 0) {
      ::close(client_fd);
      continue;
    }
    auto relay = std::make_unique<Relay>();
    relay->client_fd = client_fd;
    relay->upstream_fd = upstream_fd;
    relay->forward = std::thread([client_fd, upstream_fd] {
      pump(client_fd, upstream_fd);
    });
    relay->backward = std::thread([client_fd, upstream_fd] {
      pump(upstream_fd, client_fd);
    });
    const std::lock_guard<std::mutex> lock(mutex_);
    if (killed_) {
      // kill() already swept relays_; drop this straggler the same way.
      ::shutdown(client_fd, SHUT_RDWR);
      ::shutdown(upstream_fd, SHUT_RDWR);
    }
    relays_.push_back(std::move(relay));
  }
}

void ChaosProxy::kill() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (killed_) return;
  killed_ = true;
  // Wakes the acceptor (accept fails once the listen socket is shut down)
  // and makes every pump see EOF/error on its next read or write. The fds
  // stay open - and therefore valid - until the destructor joins the
  // threads that might still touch them.
  ::shutdown(listen_fd_, SHUT_RDWR);
  for (const std::unique_ptr<Relay>& relay : relays_) {
    ::shutdown(relay->client_fd, SHUT_RDWR);
    ::shutdown(relay->upstream_fd, SHUT_RDWR);
  }
}

std::size_t ChaosProxy::connections() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

}  // namespace edea::service
