#include "service/server_cli.hpp"

#include <limits>
#include <stdexcept>

namespace edea::service {

namespace {

/// Parses a non-negative integer <= `max`. Must start with a digit:
/// std::stoull would silently wrap "-2" into a huge count, skip leading
/// whitespace in " 80", and accept a '+' sign - none of which belongs in
/// a port or thread count.
bool parse_count(const std::string& text, std::size_t max, std::size_t* out) {
  if (text.empty() || text.front() < '0' || text.front() > '9') return false;
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(text, &consumed);
    if (consumed != text.size() || value > max) return false;
    *out = static_cast<std::size_t>(value);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

std::string server_usage() {
  return
      "usage: simulation_server [options] < requests.txt   (stdio mode)\n"
      "       simulation_server --listen PORT [options]    (TCP socket mode)\n"
      "\n"
      "Serves the EDEA simulation line protocol (run <network> [key=value\n"
      "...] | stats) over stdin/stdout or a loopback TCP socket, one\n"
      "session per connection, with a memoizing result cache.\n"
      "\n"
      "options:\n"
      "  --help                 print this help and exit\n"
      "  --listen PORT          serve TCP on 127.0.0.1:PORT instead of\n"
      "                         stdio (0 = ephemeral; the bound port is\n"
      "                         printed to stderr)\n"
      "  --max-sessions N       socket mode: exit after serving N\n"
      "                         connections (0 = unlimited; default 0)\n"
      "  --cache-file PATH      load the persisted result cache from PATH\n"
      "                         at startup (if it exists) and save it back\n"
      "                         on shutdown, so repeated design points\n"
      "                         survive restarts\n"
      "  --backend ID           default accelerator backend for requests\n"
      "                         that carry no backend= key; one of the\n"
      "                         registered dataflows (edea, serialized;\n"
      "                         default edea)\n"
      "  --batch N              default images-per-run for requests that\n"
      "                         carry no batch= key: every run pushes N\n"
      "                         images through one planned arena/setup,\n"
      "                         bit-identical per image to N separate\n"
      "                         runs (>= 1; default 1)\n"
      "  --dilation N           default DWC dilation for requests that\n"
      "                         carry no dilation= key: every layer of the\n"
      "                         resolved network runs with taps N apart,\n"
      "                         padding scaled to preserve output extents\n"
      "                         (>= 1; default 1)\n"
      "  --depth-multiplier N   default extra depthwise multiplier for\n"
      "                         requests that carry no depth_multiplier=\n"
      "                         key, multiplying into multipliers the\n"
      "                         network already carries (>= 1; default 1)\n"
      "  --workers N            service worker threads (0 = shared pool;\n"
      "                         default 0)\n"
      "  --max-queue N          admit at most N in-flight fresh\n"
      "                         simulations; beyond that a run request\n"
      "                         answers `busy id=<n> retry_ms=<m>` instead\n"
      "                         of queueing (0 = unbounded; default 0).\n"
      "                         Cache hits and coalesced duplicates are\n"
      "                         always admitted\n"
      "  --busy-retry-ms N      the retry hint busy replies advertise\n"
      "                         (>= 1; default 25; needs --max-queue)\n"
      "  --ordered              refuse `mode unordered` switches: every\n"
      "                         session keeps the byte-exact ordered reply\n"
      "                         protocol (the verified reference mode)\n"
      "  --cache N              result-cache capacity in completed entries\n"
      "                         (0 disables memoization; default 256)\n"
      "  --tile-parallelism N   split each layer's buffer tiles over N\n"
      "                         shared-pool workers inside every request\n"
      "                         (>= 1; results are bit-identical at every\n"
      "                         width; default 1)\n"
      "  --verify               stdio mode only: recompute every request\n"
      "                         on a strictly serial SweepRunner and exit\n"
      "                         nonzero on any outcome or cache-accounting\n"
      "                         deviation (the CI gate)\n";
}

ServerConfig parse_server_args(int argc, const char* const* argv) {
  ServerConfig config;
  bool max_sessions_given = false;
  bool busy_retry_given = false;

  const auto value_of = [&](int& i, const std::string& flag,
                            std::string* out) {
    if (i + 1 >= argc) {
      config.error = flag + " needs a value";
      return false;
    }
    *out = argv[++i];
    return true;
  };

  for (int i = 0; i < argc && config.error.empty(); ++i) {
    const std::string arg = argv[i];
    std::string value;
    std::size_t count = 0;
    if (arg == "--help") {
      config.help = true;
    } else if (arg == "--verify") {
      config.verify = true;
    } else if (arg == "--listen") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, 65535, &count)) {
        config.error = "--listen needs a port in [0, 65535], got '" + value +
                       "'";
        break;
      }
      config.listen = true;
      config.port = static_cast<std::uint16_t>(count);
    } else if (arg == "--max-sessions") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, std::numeric_limits<std::size_t>::max(),
                       &count)) {
        config.error = "--max-sessions needs a non-negative count, got '" +
                       value + "'";
        break;
      }
      config.max_sessions = count;
      max_sessions_given = true;
    } else if (arg == "--cache-file") {
      if (!value_of(i, arg, &value)) break;
      if (value.empty()) {
        config.error = "--cache-file needs a non-empty path";
        break;
      }
      config.cache_file = value;
    } else if (arg == "--backend") {
      if (!value_of(i, arg, &value)) break;
      if (!core::backend_known(value)) {
        config.error = "--backend: unknown backend '" + value + "' (known: " +
                       core::known_backends_string() + ")";
        break;
      }
      config.backend = value;
    } else if (arg == "--batch") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error = "--batch needs a positive count, got '" + value + "'";
        break;
      }
      config.batch = static_cast<int>(count);
    } else if (arg == "--dilation") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error =
            "--dilation needs a positive count, got '" + value + "'";
        break;
      }
      config.dilation = static_cast<int>(count);
    } else if (arg == "--depth-multiplier") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error =
            "--depth-multiplier needs a positive count, got '" + value + "'";
        break;
      }
      config.depth_multiplier = static_cast<int>(count);
    } else if (arg == "--workers") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, std::numeric_limits<unsigned>::max(), &count)) {
        config.error = "--workers needs a non-negative count, got '" + value +
                       "'";
        break;
      }
      config.service.worker_threads = static_cast<unsigned>(count);
    } else if (arg == "--cache") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, std::numeric_limits<std::size_t>::max(),
                       &count)) {
        config.error = "--cache needs a non-negative capacity, got '" + value +
                       "'";
        break;
      }
      config.service.cache_capacity = count;
    } else if (arg == "--max-queue") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value, std::numeric_limits<std::size_t>::max(),
                       &count)) {
        config.error = "--max-queue needs a non-negative count, got '" +
                       value + "'";
        break;
      }
      config.service.max_queue = count;
    } else if (arg == "--busy-retry-ms") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error =
            "--busy-retry-ms needs a positive count, got '" + value + "'";
        break;
      }
      config.busy_retry_ms = static_cast<int>(count);
      busy_retry_given = true;
    } else if (arg == "--ordered") {
      config.ordered = true;
    } else if (arg == "--tile-parallelism") {
      if (!value_of(i, arg, &value)) break;
      if (!parse_count(value,
                       static_cast<std::size_t>(
                           std::numeric_limits<int>::max()),
                       &count) ||
          count < 1) {
        config.error =
            "--tile-parallelism needs a positive width, got '" + value + "'";
        break;
      }
      config.service.tile_parallelism = static_cast<int>(count);
    } else {
      config.error = "unknown option '" + arg + "'";
    }
  }

  if (config.error.empty() && config.verify && config.listen) {
    config.error =
        "--verify is stdio-only (in socket mode the client verifies; see "
        "simulation_client --verify)";
  }
  if (config.error.empty() && max_sessions_given && !config.listen) {
    config.error = "--max-sessions only applies with --listen";
  }
  if (config.error.empty() && busy_retry_given &&
      config.service.max_queue == 0) {
    // Without a bounded queue no busy reply is ever sent - a retry hint
    // that can never reach a client is an operator error, not a knob.
    config.error = "--busy-retry-ms only applies with --max-queue";
  }
  if (config.error.empty() && !config.cache_file.empty() &&
      config.service.cache_capacity == 0) {
    // load_cache is a no-op at capacity 0, but save-on-shutdown would
    // still rewrite the file with the (empty) cache - silently destroying
    // every persisted design point. Contradictory; refuse up front.
    config.error =
        "--cache-file needs memoization; it cannot be combined with "
        "--cache 0";
  }
  return config;
}

}  // namespace edea::service
